// Sharded-vs-single-simulator differential tests.
//
// ShardedFleet partitions the fleet across per-shard simulators and runs
// them on worker threads with conservative-lookahead windows; exactly
// like heap-vs-calendar and routed-vs-broadcast before it, the
// single-simulator ProxyFleet is the differential reference.  These
// tests run randomized topologies under {1, 2, 4, 8} threads and both
// scheduler backends and assert byte-identical per-proxy poll logs, TTR
// series, merged record streams and fleet counters — determinism at any
// thread count is the acceptance bar, not statistical closeness.
//
// The workloads use adaptive (LIMD) policies and non-harmonic constants
// (relay latency != rtt != retry delay), so same-instant collisions
// between unrelated proxies' event chains — where the reference's global
// FIFO order is not reproducible from per-event metadata — have measure
// zero.  Fixed-TTL fleets with harmonically related periods can
// manufacture such ties; the sharded driver's ordering contract (fire
// time, schedule time, owner tag, source seq) is documented in
// src/fleet/sharded_fleet.h.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "client/client_traffic.h"
#include "consistency/limd.h"
#include "fleet/faults.h"
#include "fleet/proxy_fleet.h"
#include "fleet/sharded_fleet.h"
#include "metrics/accounting.h"
#include "origin/origin_server.h"
#include "proxy/polling_engine.h"
#include "sim/simulator.h"
#include "trace/update_trace.h"
#include "util/check.h"
#include "util/rng.h"

namespace broadway {
namespace {

// Set an environment variable for the current scope (the CI matrix
// idiom; see test_scheduler_differential.cpp).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) previous_ = old;
    had_previous_ = old != nullptr;
    ::setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() {
    if (had_previous_) {
      ::setenv(name_, previous_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string previous_;
  bool had_previous_ = false;
};

constexpr Duration kHorizon = 12000.0;
constexpr std::size_t kThreadCounts[] = {1, 2, 4, 8};

UpdateTrace irregular_trace(const std::string& name, std::uint64_t seed,
                            Duration horizon) {
  Rng rng(seed);
  std::vector<TimePoint> updates;
  TimePoint t = 0.0;
  for (;;) {
    t += rng.uniform(40.0, 900.0);
    if (t >= horizon) break;
    updates.push_back(t);
  }
  return UpdateTrace(name, std::move(updates), horizon);
}

/// A fleet topology: traces, who tracks what, δ-groups.  Both the
/// reference and the sharded run are built from the same instance, with
/// registrations in the same order.
struct Topology {
  std::size_t proxies = 0;
  std::vector<UpdateTrace> traces;
  std::vector<std::pair<std::size_t, std::string>> tracked;
  std::vector<std::pair<std::vector<FleetMember>, Duration>> groups;
};

Topology random_topology(std::uint64_t seed) {
  Rng rng(seed);
  Topology topo;
  topo.proxies = 3 + static_cast<std::size_t>(rng.uniform(0.0, 3.0));
  const std::size_t objects = 3 + static_cast<std::size_t>(
                                      rng.uniform(0.0, 2.0));
  for (std::size_t o = 0; o < objects; ++o) {
    topo.traces.push_back(irregular_trace("/object/" + std::to_string(o),
                                          seed * 100 + o, kHorizon));
  }
  // Tracking matrix: every proxy tracks a random subset (never empty;
  // every object has at least one tracker by construction of the first
  // proxy's row).
  for (std::size_t p = 0; p < topo.proxies; ++p) {
    bool any = false;
    for (std::size_t o = 0; o < objects; ++o) {
      if (p == 0 || rng.uniform(0.0, 1.0) < 0.7) {
        topo.tracked.push_back({p, topo.traces[o].name()});
        any = true;
      }
    }
    if (!any) topo.tracked.push_back({p, topo.traces[0].name()});
  }
  // Two private objects per proxy, tracked nowhere else: they never send
  // or receive a relay, so under object partitioning they are the pairs
  // free to leave their proxy's push unit and fill the extra shards.
  for (std::size_t p = 0; p < topo.proxies; ++p) {
    for (std::size_t k = 0; k < 2; ++k) {
      topo.traces.push_back(
          irregular_trace("/private/" + std::to_string(p) + "/" +
                              std::to_string(k),
                          seed * 1000 + p * 10 + k, kHorizon));
      topo.tracked.push_back({p, topo.traces.back().name()});
    }
  }
  // Zero, one or two δ-groups over proxies that track the group's uri.
  const std::size_t group_count =
      static_cast<std::size_t>(rng.uniform(0.0, 3.0));
  for (std::size_t g = 0; g < group_count; ++g) {
    const std::string& uri =
        topo.traces[static_cast<std::size_t>(
                        rng.uniform(0.0, static_cast<double>(objects)))]
            .name();
    std::vector<FleetMember> members;
    for (std::size_t p = 0; p < topo.proxies; ++p) {
      const bool tracks = [&] {
        for (const auto& entry : topo.tracked) {
          if (entry.first == p && entry.second == uri) return true;
        }
        return false;
      }();
      if (tracks && rng.uniform(0.0, 1.0) < 0.6) {
        members.push_back({p, uri});
      }
    }
    if (members.size() >= 2) {
      topo.groups.push_back({std::move(members), 400.0});
    }
  }
  return topo;
}

FleetConfig fleet_config(std::size_t proxies, bool clients = false,
                         const FaultSchedule& faults = {}) {
  FleetConfig config;
  config.faults = faults;
  config.proxies = proxies;
  config.cooperative_push = true;
  // Non-harmonic constants: the relay latency (= lookahead window) must
  // not equal the rtt or the retry delay, or same-instant (fire,
  // schedule) collisions between deliveries and unrelated local events
  // become possible — see the file comment.
  config.relay_latency = 0.7;
  config.engine.rtt = 0.1;
  config.engine.loss_probability = 0.05;
  config.engine.retry_delay = 2.0;
  if (clients) {
    // Client traffic with demand fills: lossy with slow retries (long
    // uncached windows only a fill can close), so kClientMiss polls and
    // their relay fan-out carry real traffic through the poll logs.
    config.engine.demand_fill = true;
    config.engine.loss_probability = 0.25;
    config.engine.retry_delay = 600.0;
    ClientTrafficConfig traffic;
    traffic.request_rate = 1.5;
    traffic.zipf_exponent = 0.9;
    traffic.seed = 17;
    traffic.session_locality = 0.3;
    traffic.session_objects = 3;
    config.client_traffic = traffic;
  }
  return config;
}

ShardedFleet::PolicyFactory limd_factory() {
  return [] {
    return std::make_unique<LimdPolicy>(
        LimdPolicy::Config::paper_defaults(600.0));
  };
}

/// Everything a run produces, keyed by global proxy id.
struct Artifacts {
  std::vector<std::vector<PollRecord>> records_by_proxy;
  std::vector<std::vector<std::pair<TimePoint, Duration>>> ttr_series;
  std::vector<PollRecord> merged;
  std::size_t origin_requests = 0;
  std::size_t origin_polls = 0;
  std::size_t relays_sent = 0;
  std::size_t relays_delivered = 0;
  std::size_t relays_applied = 0;
  std::size_t relays_in_flight = 0;
  std::size_t relays_lost = 0;
  std::size_t relays_retried = 0;
  std::size_t relays_dropped_dark = 0;
  FleetOriginLoad load;
};

Artifacts reference_run(const Topology& topo, Duration horizon,
                        bool clients = false,
                        const FaultSchedule& faults = {}) {
  Simulator sim;
  OriginServer origin(sim);
  for (const UpdateTrace& trace : topo.traces) {
    origin.attach_update_trace(trace.name(), trace);
  }
  ProxyFleet fleet(sim, origin, fleet_config(topo.proxies, clients, faults));
  const auto factory = limd_factory();
  for (const auto& [proxy, uri] : topo.tracked) {
    fleet.add_temporal_object(proxy, uri, factory());
  }
  for (const auto& [members, delta] : topo.groups) {
    fleet.add_delta_group(members, delta);
  }
  fleet.start();
  sim.run_until(horizon);

  Artifacts artifacts;
  std::vector<ProxyPollRecords> logs;
  for (std::size_t p = 0; p < fleet.size(); ++p) {
    artifacts.records_by_proxy.push_back(
        fleet.proxy(p).poll_log().records());
    for (const UpdateTrace& trace : topo.traces) {
      artifacts.ttr_series.push_back(fleet.proxy(p).ttr_series(trace.name()));
    }
    logs.push_back({p, &fleet.proxy(p).poll_log().records()});
  }
  artifacts.merged = merge_poll_records(std::move(logs));
  artifacts.origin_requests = origin.requests_served();
  artifacts.origin_polls = fleet.origin_polls();
  artifacts.relays_sent = fleet.relays_sent();
  artifacts.relays_delivered = fleet.relays_delivered();
  artifacts.relays_applied = fleet.relays_applied();
  artifacts.relays_in_flight = fleet.relays_in_flight();
  artifacts.relays_lost = fleet.relays_lost();
  artifacts.relays_retried = fleet.relays_retried();
  artifacts.relays_dropped_dark = fleet.relays_dropped_dark();
  artifacts.load = fleet.origin_load();
  return artifacts;
}

ShardedFleetConfig sharded_config(
    const Topology& topo, std::size_t threads, std::size_t shards = 0,
    WindowPolicy policy = WindowPolicy::kAdaptive, bool clients = false,
    const FaultSchedule& faults = {}) {
  ShardedFleetConfig config;
  config.fleet = fleet_config(topo.proxies, clients, faults);
  config.threads = threads;
  config.shards = shards;
  config.window_policy = policy;
  config.origin_setup = [traces = topo.traces](OriginServer& origin) {
    for (const UpdateTrace& trace : traces) {
      origin.attach_update_trace(trace.name(), trace);
    }
  };
  return config;
}

std::unique_ptr<ShardedFleet> make_sharded(
    const Topology& topo, std::size_t threads, std::size_t shards = 0,
    WindowPolicy policy = WindowPolicy::kAdaptive, bool clients = false,
    const FaultSchedule& faults = {}) {
  auto fleet = std::make_unique<ShardedFleet>(
      sharded_config(topo, threads, shards, policy, clients, faults));
  const auto factory = limd_factory();
  for (const auto& [proxy, uri] : topo.tracked) {
    fleet->add_temporal_object(proxy, uri, factory);
  }
  for (const auto& [members, delta] : topo.groups) {
    fleet->add_delta_group(members, delta);
  }
  return fleet;
}

Artifacts sharded_run(const Topology& topo, std::size_t threads,
                      Duration horizon) {
  auto fleet = make_sharded(topo, threads);
  fleet->start();
  fleet->run_until(horizon);

  Artifacts artifacts;
  for (std::size_t p = 0; p < fleet->size(); ++p) {
    artifacts.records_by_proxy.push_back(
        fleet->proxy(p).poll_log().records());
    for (const UpdateTrace& trace : topo.traces) {
      artifacts.ttr_series.push_back(
          fleet->proxy(p).ttr_series(trace.name()));
    }
  }
  artifacts.merged = fleet->merged_poll_records();
  artifacts.origin_requests = fleet->origin_requests();
  artifacts.origin_polls = fleet->origin_polls();
  artifacts.relays_sent = fleet->relays_sent();
  artifacts.relays_delivered = fleet->relays_delivered();
  artifacts.relays_applied = fleet->relays_applied();
  artifacts.relays_in_flight = fleet->relays_in_flight();
  artifacts.relays_lost = fleet->relays_lost();
  artifacts.relays_retried = fleet->relays_retried();
  artifacts.relays_dropped_dark = fleet->relays_dropped_dark();
  artifacts.load = fleet->origin_load();
  return artifacts;
}

void expect_records_identical(const std::vector<PollRecord>& a,
                              const std::vector<PollRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("record " + std::to_string(i));
    EXPECT_EQ(a[i].uri, b[i].uri);
    EXPECT_EQ(a[i].object, b[i].object);
    EXPECT_EQ(a[i].cause, b[i].cause);
    EXPECT_EQ(a[i].modified, b[i].modified);
    EXPECT_EQ(a[i].failed, b[i].failed);
    EXPECT_EQ(a[i].snapshot_time, b[i].snapshot_time);
    EXPECT_EQ(a[i].complete_time, b[i].complete_time);
  }
}

void expect_artifacts_identical(const Artifacts& reference,
                                const Artifacts& candidate) {
  ASSERT_EQ(reference.records_by_proxy.size(),
            candidate.records_by_proxy.size());
  for (std::size_t p = 0; p < reference.records_by_proxy.size(); ++p) {
    SCOPED_TRACE("proxy " + std::to_string(p));
    expect_records_identical(reference.records_by_proxy[p],
                             candidate.records_by_proxy[p]);
  }
  EXPECT_EQ(reference.ttr_series, candidate.ttr_series);
  expect_records_identical(reference.merged, candidate.merged);
  EXPECT_EQ(reference.origin_requests, candidate.origin_requests);
  EXPECT_EQ(reference.origin_polls, candidate.origin_polls);
  EXPECT_EQ(reference.relays_sent, candidate.relays_sent);
  EXPECT_EQ(reference.relays_delivered, candidate.relays_delivered);
  EXPECT_EQ(reference.relays_applied, candidate.relays_applied);
  EXPECT_EQ(reference.relays_in_flight, candidate.relays_in_flight);
  EXPECT_EQ(reference.relays_lost, candidate.relays_lost);
  EXPECT_EQ(reference.relays_retried, candidate.relays_retried);
  EXPECT_EQ(reference.relays_dropped_dark, candidate.relays_dropped_dark);
  EXPECT_EQ(reference.load.origin_messages, candidate.load.origin_messages);
  EXPECT_EQ(reference.load.origin_polls, candidate.load.origin_polls);
  EXPECT_EQ(reference.load.relay_refreshes, candidate.load.relay_refreshes);
  EXPECT_EQ(reference.load.demand_fills, candidate.load.demand_fills);
  EXPECT_EQ(reference.load.failed, candidate.load.failed);
}

// The origin-load counters recounted from the merged record stream: the
// pinned invariant origin_polls == policy polls + demand fills, checked
// against the full per-record causes rather than its own O(1) mirrors.
void expect_load_matches_records(const Artifacts& artifacts) {
  const PollCauseCounts counts = count_by_cause(artifacts.merged);
  EXPECT_EQ(counts.client_miss, artifacts.load.demand_fills);
  EXPECT_EQ(counts.total_refreshes(), artifacts.load.origin_polls);
  EXPECT_EQ(counts.scheduled + counts.triggered + counts.retry,
            artifacts.load.policy_polls());
  EXPECT_EQ(counts.failed, artifacts.load.failed);
  EXPECT_EQ(artifacts.load.origin_polls,
            artifacts.load.policy_polls() + artifacts.load.demand_fills);
}

// A fault schedule that exercises every injected failure mode at once:
// two proxies with outage windows (proxy 0 twice, so re-crash after a
// recovery is covered), relay loss heavy enough to retry constantly, and
// latency jitter below the base relay latency (jittered deliveries stay
// inside the conservative window-safety argument).  Constants stay
// non-harmonic with the fleet's 0.7/0.1/2.0 trio.
FaultSchedule heavy_faults() {
  FaultSchedule faults;
  faults.crashes.push_back({0, {{3000.0, 4500.0}, {8600.0, 9400.0}}});
  faults.crashes.push_back({2, {{5300.0, 6400.0}}});
  faults.relay_loss = 0.12;
  faults.relay_jitter_max = 0.37;
  faults.retry_backoff_base = 1.3;
  faults.retry_backoff_cap = 11.0;
  faults.relay_retry_limit = 4;
  return faults;
}

// ---- the differential ------------------------------------------------------

TEST(ShardedDifferential, ByteIdenticalAcrossThreadCountsAndSchedulers) {
  for (const char* scheduler : {"heap", "calendar"}) {
    ScopedEnv env("BROADWAY_SCHEDULER", scheduler);
    for (const std::uint64_t seed : {11u, 23u, 47u}) {
      SCOPED_TRACE(std::string(scheduler) + " topology seed " +
                   std::to_string(seed));
      const Topology topo = random_topology(seed);
      const Artifacts reference = reference_run(topo, kHorizon);
      ASSERT_FALSE(reference.merged.empty());
      EXPECT_GT(reference.relays_delivered, 0u);
      for (const std::size_t threads : kThreadCounts) {
        SCOPED_TRACE("threads " + std::to_string(threads));
        expect_artifacts_identical(reference,
                                   sharded_run(topo, threads, kHorizon));
      }
    }
  }
}

// Same seed, different thread schedules: the merged stream depends only
// on the topology, never on the interleaving of the workers.
TEST(ShardedDifferential, MergeOrderIsThreadScheduleIndependent) {
  const Topology topo = random_topology(5);
  const Artifacts two = sharded_run(topo, 2, kHorizon);
  for (int repeat = 0; repeat < 3; ++repeat) {
    const Artifacts eight = sharded_run(topo, 8, kHorizon);
    expect_records_identical(two.merged, eight.merged);
  }
}

// δ-group members must land on one shard (their coordination is
// synchronous); ungrouped proxies shard freely.
TEST(ShardedDifferential, DeltaGroupsAreColocated) {
  Topology topo;
  topo.proxies = 5;
  for (std::size_t o = 0; o < 3; ++o) {
    topo.traces.push_back(irregular_trace("/object/" + std::to_string(o),
                                          900 + o, kHorizon));
  }
  for (std::size_t p = 0; p < topo.proxies; ++p) {
    for (const UpdateTrace& trace : topo.traces) {
      topo.tracked.push_back({p, trace.name()});
    }
  }
  // One group spanning proxies 1 and 3; proxies 0, 2, 4 stay free.
  topo.groups.push_back(
      {{{1, topo.traces[0].name()}, {3, topo.traces[0].name()}}, 500.0});

  auto fleet = make_sharded(topo, 4);
  fleet->start();
  EXPECT_EQ(fleet->shard_count(), 4u);  // {0}, {1,3}, {2}, {4}
  EXPECT_EQ(fleet->shard_of(1), fleet->shard_of(3));
  EXPECT_NE(fleet->shard_of(0), fleet->shard_of(1));
  fleet->run_until(kHorizon);

  const Artifacts reference = reference_run(topo, kHorizon);
  Artifacts candidate;
  for (std::size_t p = 0; p < fleet->size(); ++p) {
    candidate.records_by_proxy.push_back(
        fleet->proxy(p).poll_log().records());
    for (const UpdateTrace& trace : topo.traces) {
      candidate.ttr_series.push_back(
          fleet->proxy(p).ttr_series(trace.name()));
    }
  }
  ASSERT_EQ(reference.records_by_proxy.size(),
            candidate.records_by_proxy.size());
  for (std::size_t p = 0; p < reference.records_by_proxy.size(); ++p) {
    SCOPED_TRACE("proxy " + std::to_string(p));
    expect_records_identical(reference.records_by_proxy[p],
                             candidate.records_by_proxy[p]);
  }
  EXPECT_EQ(reference.ttr_series, candidate.ttr_series);
}

// ---- window policies × object-partitioned shard maps -----------------------

// The window-edge policy and the shard map are pure performance knobs:
// fixed and adaptive edges, legacy whole-proxy maps (shards = 0) and
// object-partitioned maps with more shards than the fleet has proxies
// must all reproduce the reference run exactly, at every thread count,
// under both schedulers.  A split proxy has no single per-proxy log (its
// slices are merged on demand), so the comparison pins the merged
// stream, every unsplit proxy's log, and the fleet counters.
TEST(ShardedDifferential, WindowPolicyAndPartitionSweepIsByteIdentical) {
  for (const char* scheduler : {"heap", "calendar"}) {
    ScopedEnv env("BROADWAY_SCHEDULER", scheduler);
    for (const std::uint64_t seed : {7u, 39u}) {
      SCOPED_TRACE(std::string(scheduler) + " topology seed " +
                   std::to_string(seed));
      const Topology topo = random_topology(seed);
      const Artifacts reference = reference_run(topo, kHorizon);
      ASSERT_FALSE(reference.merged.empty());
      EXPECT_GT(reference.relays_delivered, 0u);
      for (const WindowPolicy policy :
           {WindowPolicy::kFixed, WindowPolicy::kAdaptive}) {
        for (const std::size_t shards : {std::size_t{0}, topo.proxies + 3}) {
          for (const std::size_t threads : kThreadCounts) {
            SCOPED_TRACE(
                std::string(policy == WindowPolicy::kFixed ? "fixed"
                                                           : "adaptive") +
                " windows, " + std::to_string(shards) + " shards, " +
                std::to_string(threads) + " threads");
            auto fleet = make_sharded(topo, threads, shards, policy);
            fleet->start();
            if (shards > 0) {
              // A requested count above the proxy count must actually be
              // honoured: more shards than proxies, at least one proxy
              // split across shards.
              EXPECT_GT(fleet->shard_count(), topo.proxies);
              bool any_split = false;
              for (std::size_t p = 0; p < topo.proxies; ++p) {
                if (fleet->slice_count(p) > 1) any_split = true;
              }
              EXPECT_TRUE(any_split);
            }
            fleet->run_until(kHorizon);
            expect_records_identical(reference.merged,
                                     fleet->merged_poll_records());
            for (std::size_t p = 0; p < topo.proxies; ++p) {
              if (fleet->slice_count(p) != 1) continue;
              SCOPED_TRACE("proxy " + std::to_string(p));
              expect_records_identical(reference.records_by_proxy[p],
                                       fleet->proxy(p).poll_log().records());
            }
            EXPECT_EQ(reference.origin_requests, fleet->origin_requests());
            EXPECT_EQ(reference.origin_polls, fleet->origin_polls());
            EXPECT_EQ(reference.relays_sent, fleet->relays_sent());
            EXPECT_EQ(reference.relays_delivered, fleet->relays_delivered());
            EXPECT_EQ(reference.relays_applied, fleet->relays_applied());
            EXPECT_EQ(reference.relays_in_flight, fleet->relays_in_flight());
            const FleetOriginLoad load = fleet->origin_load();
            EXPECT_EQ(reference.load.origin_messages, load.origin_messages);
            EXPECT_EQ(reference.load.origin_polls, load.origin_polls);
            EXPECT_EQ(reference.load.relay_refreshes, load.relay_refreshes);
            EXPECT_EQ(reference.load.failed, load.failed);
          }
        }
      }
    }
  }
}

// The fault-injection acceptance bar: with crash/recovery windows, relay
// loss, latency jitter, capped-backoff retries and δ-group failover all
// active at once, every artifact — per-proxy poll logs, TTR series, the
// merged record stream, origin load, and the full fault ledger — must
// reproduce byte-identically across thread counts, whole-proxy and
// partitioned shard layouts, both window policies and both scheduler
// backends.  The fixed-vs-adaptive axis doubles as the fault-heavy
// window differential: the adaptive edge folds export-retry fire times,
// pending local relay retries and crash/recovery transitions, and a
// missing fold would surface here as a sub-bound send (fail-fast) or a
// diverging log.
TEST(ShardedDifferential, FaultInjectionSweepIsByteIdentical) {
  const FaultSchedule faults = heavy_faults();
  for (const char* scheduler : {"heap", "calendar"}) {
    ScopedEnv env("BROADWAY_SCHEDULER", scheduler);
    const std::uint64_t seed = 23u;
    SCOPED_TRACE(std::string(scheduler) + " topology seed " +
                 std::to_string(seed));
    const Topology topo = random_topology(seed);
    const Artifacts reference =
        reference_run(topo, kHorizon, /*clients=*/false, faults);
    ASSERT_FALSE(reference.merged.empty());
    // The schedule must actually bite in the reference run: losses,
    // retries, and relays dropped at a dark destination all occur.
    EXPECT_GT(reference.relays_lost, 0u);
    EXPECT_GT(reference.relays_retried, 0u);
    EXPECT_GT(reference.relays_dropped_dark, 0u);
    EXPECT_EQ(reference.relays_sent,
              reference.relays_delivered + reference.relays_in_flight +
                  reference.relays_lost);
    for (const WindowPolicy policy :
         {WindowPolicy::kFixed, WindowPolicy::kAdaptive}) {
      for (const std::size_t shards : {std::size_t{0}, topo.proxies + 3}) {
        for (const std::size_t threads : kThreadCounts) {
          SCOPED_TRACE(
              std::string(policy == WindowPolicy::kFixed ? "fixed"
                                                         : "adaptive") +
              " windows, " + std::to_string(shards) + " shards, " +
              std::to_string(threads) + " threads");
          auto fleet = make_sharded(topo, threads, shards, policy,
                                    /*clients=*/false, faults);
          fleet->start();
          fleet->run_until(kHorizon);
          // A split proxy has no per-proxy log (fail-fast accessors), so
          // the per-proxy comparison covers unsplit proxies and the
          // merged stream pins the rest.
          expect_records_identical(reference.merged,
                                   fleet->merged_poll_records());
          for (std::size_t p = 0; p < topo.proxies; ++p) {
            if (fleet->slice_count(p) != 1) continue;
            SCOPED_TRACE("proxy " + std::to_string(p));
            expect_records_identical(reference.records_by_proxy[p],
                                     fleet->proxy(p).poll_log().records());
          }
          EXPECT_EQ(reference.origin_requests, fleet->origin_requests());
          EXPECT_EQ(reference.origin_polls, fleet->origin_polls());
          EXPECT_EQ(reference.relays_sent, fleet->relays_sent());
          EXPECT_EQ(reference.relays_delivered, fleet->relays_delivered());
          EXPECT_EQ(reference.relays_applied, fleet->relays_applied());
          EXPECT_EQ(reference.relays_in_flight, fleet->relays_in_flight());
          EXPECT_EQ(reference.relays_lost, fleet->relays_lost());
          EXPECT_EQ(reference.relays_retried, fleet->relays_retried());
          EXPECT_EQ(reference.relays_dropped_dark,
                    fleet->relays_dropped_dark());
          const FleetOriginLoad load = fleet->origin_load();
          EXPECT_EQ(reference.load.origin_messages, load.origin_messages);
          EXPECT_EQ(reference.load.origin_polls, load.origin_polls);
          EXPECT_EQ(reference.load.relay_refreshes, load.relay_refreshes);
          EXPECT_EQ(reference.load.failed, load.failed);
          EXPECT_EQ(fleet->relays_sent(),
                    fleet->relays_delivered() + fleet->relays_in_flight() +
                        fleet->relays_lost());
        }
      }
    }
  }
}

// Demand fills go through the shared poll pipeline, so with client
// traffic and demand_fill on the *poll-log* differential must still hold:
// kClientMiss records, their sibling relays and the full cause breakdown
// reproduce byte-identically at every thread count, under both window
// policies and with an object-partitioned shard request.  Client-bearing
// proxies are whole colocation units (a split proxy cannot serve one
// client stream from two slices), so unlike the clientless sweep this
// test does not expect any proxy to split — it expects the *results* to
// survive the request.
TEST(ShardedDifferential, DemandFillClientSweepIsByteIdentical) {
  for (const char* scheduler : {"heap", "calendar"}) {
    ScopedEnv env("BROADWAY_SCHEDULER", scheduler);
    for (const std::uint64_t seed : {7u, 39u}) {
      SCOPED_TRACE(std::string(scheduler) + " topology seed " +
                   std::to_string(seed));
      const Topology topo = random_topology(seed);
      const Artifacts reference =
          reference_run(topo, kHorizon, /*clients=*/true);
      ASSERT_FALSE(reference.merged.empty());
      ASSERT_GT(reference.load.demand_fills, 0u);
      expect_load_matches_records(reference);
      for (const WindowPolicy policy :
           {WindowPolicy::kFixed, WindowPolicy::kAdaptive}) {
        for (const std::size_t shards : {std::size_t{0}, topo.proxies + 3}) {
          for (const std::size_t threads : kThreadCounts) {
            SCOPED_TRACE(
                std::string(policy == WindowPolicy::kFixed ? "fixed"
                                                           : "adaptive") +
                " windows, " + std::to_string(shards) + " shards, " +
                std::to_string(threads) + " threads");
            auto fleet = make_sharded(topo, threads, shards, policy,
                                      /*clients=*/true);
            fleet->start();
            fleet->run_until(kHorizon);
            Artifacts candidate;
            for (std::size_t p = 0; p < fleet->size(); ++p) {
              candidate.records_by_proxy.push_back(
                  fleet->proxy(p).poll_log().records());
              for (const UpdateTrace& trace : topo.traces) {
                candidate.ttr_series.push_back(
                    fleet->proxy(p).ttr_series(trace.name()));
              }
            }
            candidate.merged = fleet->merged_poll_records();
            candidate.origin_requests = fleet->origin_requests();
            candidate.origin_polls = fleet->origin_polls();
            candidate.relays_sent = fleet->relays_sent();
            candidate.relays_delivered = fleet->relays_delivered();
            candidate.relays_applied = fleet->relays_applied();
            candidate.relays_in_flight = fleet->relays_in_flight();
            candidate.relays_lost = fleet->relays_lost();
            candidate.relays_retried = fleet->relays_retried();
            candidate.relays_dropped_dark = fleet->relays_dropped_dark();
            candidate.load = fleet->origin_load();
            expect_artifacts_identical(reference, candidate);
            expect_load_matches_records(candidate);
          }
        }
      }
    }
  }
}

// Per-proxy accessors on a split proxy cannot pick a slice — the contract
// is a fail-fast CHECK pointing at the merged views, not a partial log.
TEST(ShardedDifferential, SplitProxyPerProxyAccessorsFailFast) {
  const Topology topo = random_topology(7);
  auto fleet = make_sharded(topo, 2, topo.proxies + 3);
  fleet->start();
  std::size_t split = topo.proxies;
  for (std::size_t p = 0; p < topo.proxies; ++p) {
    if (fleet->slice_count(p) > 1) split = p;
  }
  ASSERT_LT(split, topo.proxies) << "topology did not split any proxy";
  EXPECT_THROW(fleet->proxy(split), CheckFailure);
  EXPECT_THROW(fleet->shard_of(split), CheckFailure);
}

// ---- in-flight relays (counter exactness at barriers / sweep end) ----------

TEST(ShardedDifferential, InFlightRelaysDrainExactlyAcrossHorizons) {
  const Topology topo = random_topology(31);
  // Stop mid-window at an hour that is no multiple of anything: relays
  // in flight there must be counted, not dropped, and extending the run
  // must deliver every one of them.
  const Duration partial = 7777.7;
  auto fleet = make_sharded(topo, 4);
  fleet->start();
  fleet->run_until(partial);
  EXPECT_EQ(fleet->relays_sent(),
            fleet->relays_delivered() + fleet->relays_in_flight());
  fleet->run_until(kHorizon);
  // Horizon is far past the last send + latency: everything drained.
  EXPECT_EQ(fleet->relays_in_flight(), 0u);
  EXPECT_EQ(fleet->relays_sent(), fleet->relays_delivered());

  // And the two-stage run is byte-identical to the straight one — the
  // pause neither reorders nor loses anything.
  const Artifacts straight = sharded_run(topo, 4, kHorizon);
  std::vector<PollRecord> merged = fleet->merged_poll_records();
  expect_records_identical(straight.merged, merged);
  EXPECT_EQ(straight.relays_delivered, fleet->relays_delivered());
  EXPECT_EQ(straight.relays_applied, fleet->relays_applied());
  const FleetOriginLoad straight_load = straight.load;
  const FleetOriginLoad paused_load = fleet->origin_load();
  EXPECT_EQ(straight_load.origin_messages, paused_load.origin_messages);
  EXPECT_EQ(straight_load.origin_polls, paused_load.origin_polls);
  EXPECT_EQ(straight_load.relay_refreshes, paused_load.relay_refreshes);
  EXPECT_EQ(straight_load.failed, paused_load.failed);
}

// Object-partitioned maps keep the same counter exactness under both
// window policies: pausing mid-window never loses a message, and the
// resumed run merges to the same stream.
TEST(ShardedDifferential, PartitionedInFlightRelaysDrainExactly) {
  const Topology topo = random_topology(31);
  const Artifacts straight = sharded_run(topo, 4, kHorizon);
  for (const WindowPolicy policy :
       {WindowPolicy::kFixed, WindowPolicy::kAdaptive}) {
    SCOPED_TRACE(policy == WindowPolicy::kFixed ? "fixed" : "adaptive");
    auto fleet = make_sharded(topo, 4, topo.proxies + 2, policy);
    fleet->start();
    fleet->run_until(7777.7);
    EXPECT_EQ(fleet->relays_sent(),
              fleet->relays_delivered() + fleet->relays_in_flight());
    fleet->run_until(kHorizon);
    EXPECT_EQ(fleet->relays_in_flight(), 0u);
    EXPECT_EQ(fleet->relays_sent(), fleet->relays_delivered());
    expect_records_identical(straight.merged, fleet->merged_poll_records());
  }
}

// ---- fail-fast contracts ---------------------------------------------------

TEST(ShardedDifferential, CrossShardPushRequiresPositiveLatency) {
  Topology topo = random_topology(11);
  topo.groups.clear();  // ungrouped: every proxy is its own shard
  ShardedFleetConfig config = sharded_config(topo, 2);
  config.fleet.relay_latency = 0.0;  // no lookahead window
  ShardedFleet fleet(config);
  const auto factory = limd_factory();
  for (const auto& [proxy, uri] : topo.tracked) {
    fleet.add_temporal_object(proxy, uri, factory);
  }
  EXPECT_THROW(fleet.start(), CheckFailure);
}

TEST(ShardedDifferential, RegistrationAfterStartIsRejected) {
  const Topology topo = random_topology(11);
  auto fleet = make_sharded(topo, 1);
  fleet->start();
  EXPECT_THROW(
      fleet->add_temporal_object(0, topo.traces[0].name(), limd_factory()),
      CheckFailure);
}

TEST(ShardedDifferential, MismatchedOriginReplicasAreRejected) {
  Topology topo = random_topology(11);
  topo.groups.clear();  // ungrouped: every proxy is its own shard
  ShardedFleetConfig config = sharded_config(topo, 2);
  // A setup callback with per-replica behaviour (here: an extra object
  // on every shard after the first) skews intern order — caught at
  // start(), not discovered as silent id corruption mid-run.
  config.origin_setup = [traces = topo.traces,
                         calls = std::make_shared<int>(0)](
                            OriginServer& origin) {
    for (const UpdateTrace& trace : traces) {
      origin.attach_update_trace(trace.name(), trace);
    }
    if ((*calls)++ > 0) origin.add_object("/replica-only");
  };
  ShardedFleet fleet(config);
  const auto factory = limd_factory();
  for (const auto& [proxy, uri] : topo.tracked) {
    fleet.add_temporal_object(proxy, uri, factory);
  }
  EXPECT_THROW(fleet.start(), CheckFailure);
}

}  // namespace
}  // namespace broadway

// Typed-wire ≡ string-wire differential tests.
//
// The poll hot path exchanges typed metadata (RequestMeta/ResponseMeta);
// real HTTP renders and parses header strings.  These tests pin that the
// two representations are indistinguishable everywhere the consistency
// machinery can look:
//  * at the origin, for every status/extension combination, the typed
//    response carries exactly the values a proxy would parse back out of
//    the rendered headers (and materialize_headers reproduces those
//    headers byte for byte);
//  * over full simulations — temporal LIMD + triggered coordinator +
//    value objects + virtual and partitioned groups + loss injection +
//    crash recovery + a cooperative-push fleet with relay latency — the
//    poll logs, TTR series, fidelity reports and cache contents of a
//    typed_wire run and a string-wire run are byte-identical.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "consistency/function.h"
#include "consistency/limd.h"
#include "consistency/triggered.h"
#include "fleet/proxy_fleet.h"
#include "http/codec.h"
#include "http/extensions.h"
#include "metrics/fidelity.h"
#include "origin/origin_server.h"
#include "proxy/polling_engine.h"
#include "sim/simulator.h"
#include "trace/update_trace.h"
#include "trace/value_trace.h"
#include "util/rng.h"

namespace broadway {
namespace {

// ---- origin-level matrix ---------------------------------------------------

Request typed_request(const OriginServer& origin, const std::string& uri,
                      std::optional<TimePoint> ims) {
  Request request;
  request.method = Method::kGet;
  request.object = origin.object_id(uri);
  request.uri = uri;  // exercised when the id is unknown
  request.meta.active = true;
  if (ims) request.meta.if_modified_since = quantize_wire_seconds(*ims);
  return request;
}

Request string_request(const std::string& uri, std::optional<TimePoint> ims) {
  Request request;
  request.method = Method::kGet;
  request.uri = uri;
  if (ims) set_if_modified_since(request.headers, *ims);
  return request;
}

// Every value a proxy can read from a response must match between the
// typed and string representations, and materialising the typed response
// must reproduce the string response's extension headers byte for byte.
void expect_equivalent(OriginServer& origin, const std::string& uri,
                       std::optional<TimePoint> ims) {
  SCOPED_TRACE(uri + (ims ? " ims=" + std::to_string(*ims) : " unconditional"));
  Response typed = origin.handle(typed_request(origin, uri, ims));
  const Response wire = origin.handle(string_request(uri, ims));

  ASSERT_EQ(typed.status, wire.status);
  EXPECT_TRUE(typed.meta.active);
  EXPECT_EQ(wire_last_modified(typed), wire_last_modified(wire));
  EXPECT_EQ(wire_object_value(typed), wire_object_value(wire));
  std::vector<TimePoint> typed_history;
  std::vector<TimePoint> wire_history;
  EXPECT_TRUE(wire_modification_history(typed, typed_history));
  EXPECT_TRUE(wire_modification_history(wire, wire_history));
  EXPECT_EQ(typed_history, wire_history);
  EXPECT_EQ(typed.body, wire.body);

  // Full wire form: serialising the typed message lazily materialises its
  // headers and yields the same bytes as the string path (including
  // Content-Type and Content-Length framing).  The test instants sit away
  // from RFC-1123 whole-second truncation edges, where only the redundant
  // coarse date — never the authoritative precise header — could differ.
  EXPECT_EQ(serialize(typed), serialize(wire));
  EXPECT_EQ(serialize(typed_request(origin, uri, ims)),
            serialize(string_request(uri, ims)));

  // And the materialised headers match name for name.
  materialize_headers(typed);
  for (const std::string_view name :
       {kHdrLastModified, kHdrLastModifiedPrecise, kHdrModificationHistory,
        kHdrObjectValue, std::string_view("Content-Type")}) {
    SCOPED_TRACE(std::string(name));
    EXPECT_EQ(typed.headers.get(name), wire.headers.get(name));
  }
}

TEST(WireDifferential, OriginMatrix) {
  for (const bool history_enabled : {true, false}) {
    for (const bool render_bodies : {true, false}) {
      Simulator sim;
      OriginServer::Config config;
      config.history_enabled = history_enabled;
      config.history_limit = 3;  // exercise capping
      config.render_bodies = render_bodies;
      OriginServer origin(sim, config);
      VersionedObject& page = origin.add_object("/page");
      origin.add_value_object("/stock", 160.0625);
      sim.run_until(400.0);
      for (const double t : {100.125, 200.25, 300.0009, 300.5})
        page.apply_update(t);
      origin.store().at("/stock").apply_update(350.0, 161.75);

      for (const std::string uri : {"/page", "/stock"}) {
        expect_equivalent(origin, uri, std::nullopt);       // 200, full history
        expect_equivalent(origin, uri, 150.0);              // 200, partial
        expect_equivalent(origin, uri, 250.3333333);        // 200, sub-ms ims
        expect_equivalent(origin, uri, 399.0);              // 304
      }
      expect_equivalent(origin, "/ghost", std::nullopt);    // 404
      expect_equivalent(origin, "/ghost", 10.0);            // 404 conditional
    }
  }
}

TEST(WireDifferential, QuantizerMatchesPrintfEverywhere) {
  // The arithmetic fast path must equal the authoritative %.3f + strtod
  // round trip bit for bit — including printf's ties-to-even on exact
  // .5 ties (representable only at odd/16, odd/32, ... grids).
  const auto printf_quantize = [](double t) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", t);
    return std::strtod(buf, nullptr);
  };
  std::vector<double> cases = {0.0,    0.0005, 0.0015, 0.0625, 0.1875,
                               1.0 / 3.0, 2.5e-4, 86399.9995, 1234567.8905};
  for (int i = 1; i < 4000; ++i) {
    cases.push_back(static_cast<double>(2 * i + 1) / 16.0);   // exact ties
    cases.push_back(static_cast<double>(2 * i + 1) / 2000.0);  // near-tie grid
  }
  // Large-magnitude ties and offsets: the fast path must hold (and stay a
  // fast path) at year-scale horizons, not just bench-scale ones.
  for (const double base : {1.0e5, 3.1e7, 1.0e9, 4.0e12}) {
    for (int j = 0; j < 64; ++j) {
      cases.push_back(base + static_cast<double>(2 * j + 1) / 16.0);
      cases.push_back(base + static_cast<double>(j) * 0.3335);
    }
  }
  Rng rng(7);
  for (int i = 0; i < 200000; ++i) {
    cases.push_back(rng.uniform(0.0, 2.0e6));
  }
  for (int i = 0; i < 20000; ++i) {
    cases.push_back(rng.uniform(0.0, 4.0e12));
  }
  for (const double t : cases) {
    const double fast = quantize_wire_seconds(t);
    const double slow = printf_quantize(t);
    ASSERT_EQ(fast, slow) << "t=" << t;
  }
}

// ---- full-simulation differential ------------------------------------------

UpdateTrace irregular_trace(const std::string& name, std::uint64_t seed,
                            Duration horizon) {
  Rng rng(seed);
  std::vector<TimePoint> updates;
  TimePoint t = 0.0;
  for (;;) {
    t += rng.uniform(40.0, 900.0);
    if (t >= horizon) break;
    updates.push_back(t);
  }
  return UpdateTrace(name, std::move(updates), horizon);
}

ValueTrace wiggly_trace(const std::string& name, std::uint64_t seed,
                        Duration horizon) {
  Rng rng(seed);
  std::vector<ValueTrace::Step> steps;
  TimePoint t = 0.0;
  double value = 100.0;
  for (;;) {
    t += rng.uniform(5.0, 30.0);
    if (t >= horizon) break;
    value += rng.uniform(-0.4, 0.4);
    steps.push_back({t, value});
  }
  return ValueTrace(name, 100.0, std::move(steps), horizon);
}

struct RunArtifacts {
  std::vector<PollRecord> records;
  std::vector<std::vector<std::pair<TimePoint, Duration>>> ttr_series;
  std::vector<CacheEntry> cache_entries;
  TemporalFidelityReport fidelity;
  std::size_t origin_requests = 0;
};

void expect_identical(const RunArtifacts& a, const RunArtifacts& b) {
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    SCOPED_TRACE("record " + std::to_string(i));
    EXPECT_EQ(a.records[i].uri, b.records[i].uri);
    EXPECT_EQ(a.records[i].object, b.records[i].object);
    EXPECT_EQ(a.records[i].cause, b.records[i].cause);
    EXPECT_EQ(a.records[i].modified, b.records[i].modified);
    EXPECT_EQ(a.records[i].failed, b.records[i].failed);
    EXPECT_EQ(a.records[i].snapshot_time, b.records[i].snapshot_time);
    EXPECT_EQ(a.records[i].complete_time, b.records[i].complete_time);
  }
  EXPECT_EQ(a.ttr_series, b.ttr_series);
  ASSERT_EQ(a.cache_entries.size(), b.cache_entries.size());
  for (std::size_t i = 0; i < a.cache_entries.size(); ++i) {
    SCOPED_TRACE("cache entry " + std::to_string(i));
    EXPECT_EQ(a.cache_entries[i].uri, b.cache_entries[i].uri);
    EXPECT_EQ(a.cache_entries[i].body, b.cache_entries[i].body);
    EXPECT_EQ(a.cache_entries[i].snapshot_time, b.cache_entries[i].snapshot_time);
    EXPECT_EQ(a.cache_entries[i].stored_time, b.cache_entries[i].stored_time);
    EXPECT_EQ(a.cache_entries[i].last_modified, b.cache_entries[i].last_modified);
    EXPECT_EQ(a.cache_entries[i].value, b.cache_entries[i].value);
    EXPECT_EQ(a.cache_entries[i].refresh_count, b.cache_entries[i].refresh_count);
  }
  EXPECT_EQ(a.fidelity.windows, b.fidelity.windows);
  EXPECT_EQ(a.fidelity.violations, b.fidelity.violations);
  EXPECT_EQ(a.fidelity.out_sync_time, b.fidelity.out_sync_time);
  EXPECT_EQ(a.fidelity.fidelity_time(), b.fidelity.fidelity_time());
  EXPECT_EQ(a.origin_requests, b.origin_requests);
}

// One proxy exercising every object kind, with losses and a mid-run crash.
RunArtifacts run_single_proxy(bool typed_wire) {
  constexpr Duration kHorizon = 30000.0;
  const UpdateTrace trace_a = irregular_trace("/news/a", 11, kHorizon);
  const UpdateTrace trace_b = irregular_trace("/news/b", 12, kHorizon);
  const ValueTrace stock_a = wiggly_trace("/stock/a", 13, kHorizon);
  const ValueTrace stock_b = wiggly_trace("/stock/b", 14, kHorizon);
  const ValueTrace stock_c = wiggly_trace("/stock/c", 15, kHorizon);
  const ValueTrace stock_d = wiggly_trace("/stock/d", 16, kHorizon);
  const ValueTrace stock_e = wiggly_trace("/stock/e", 17, kHorizon);

  Simulator sim;
  OriginServer origin(sim);
  origin.attach_update_trace("/news/a", trace_a);
  origin.attach_update_trace("/news/b", trace_b);
  origin.attach_value_trace("/stock/a", stock_a);
  origin.attach_value_trace("/stock/b", stock_b);
  origin.attach_value_trace("/stock/c", stock_c);
  origin.attach_value_trace("/stock/d", stock_d);
  origin.attach_value_trace("/stock/e", stock_e);

  EngineConfig config;
  config.typed_wire = typed_wire;
  config.rtt = 0.25;
  config.loss_probability = 0.05;
  config.retry_delay = 3.0;
  config.seed = 99;
  PollingEngine proxy(sim, origin, config);
  proxy.add_temporal_object(
      "/news/a",
      std::make_unique<LimdPolicy>(LimdPolicy::Config::paper_defaults(600.0)));
  proxy.add_temporal_object(
      "/news/b",
      std::make_unique<LimdPolicy>(LimdPolicy::Config::paper_defaults(600.0)));
  proxy.add_coordinator(std::make_unique<TriggeredPollCoordinator>(
      std::vector<std::string>{"/news/a", "/news/b"}, 300.0));
  AdaptiveValueTtrPolicy::Config value_config;
  value_config.delta = 0.5;
  value_config.bounds = {1.0, 300.0};
  proxy.add_value_object("/stock/a", value_config);
  VirtualObjectPolicy::Config virtual_config;
  virtual_config.delta = 0.75;
  virtual_config.bounds = {5.0, 300.0};
  proxy.add_virtual_group(
      {"/stock/b", "/stock/c"},
      std::make_unique<VirtualObjectPolicy>(
          std::make_unique<DifferenceFunction>(), virtual_config));
  PartitionedTolerancePolicy::Config partitioned_config;
  partitioned_config.delta = 0.75;
  partitioned_config.bounds = {5.0, 300.0};
  proxy.add_partitioned_group(
      {"/stock/d", "/stock/e"},
      std::make_unique<PartitionedTolerancePolicy>(
          std::make_unique<DifferenceFunction>(), partitioned_config));

  proxy.start();
  sim.run_until(kHorizon / 2);
  proxy.crash_and_recover();
  sim.run_until(kHorizon);

  RunArtifacts artifacts;
  artifacts.records = proxy.poll_log().records();
  for (const std::string uri : {"/news/a", "/news/b", "/stock/a", "/stock/d"}) {
    artifacts.ttr_series.push_back(proxy.ttr_series(uri));
  }
  for (const std::string& uri : proxy.cache().uris()) {
    artifacts.cache_entries.push_back(proxy.cache().at(uri));
  }
  artifacts.fidelity = evaluate_temporal_fidelity(
      trace_a, successful_polls(proxy.poll_log(), "/news/a"), 600.0, kHorizon);
  artifacts.origin_requests = origin.requests_served();
  return artifacts;
}

TEST(WireDifferential, SingleProxyRunsAreByteIdentical) {
  expect_identical(run_single_proxy(/*typed_wire=*/true),
                   run_single_proxy(/*typed_wire=*/false));
}

// A cooperative-push fleet with relay latency: relays carry responses
// across proxies (including the history restriction on apply), in both
// representations.
RunArtifacts run_fleet(bool typed_wire) {
  constexpr Duration kHorizon = 30000.0;
  std::vector<UpdateTrace> traces;
  for (int i = 0; i < 6; ++i) {
    traces.push_back(irregular_trace("/object/" + std::to_string(i),
                                     100 + i, kHorizon));
  }

  Simulator sim;
  OriginServer origin(sim);
  for (const UpdateTrace& trace : traces) {
    origin.attach_update_trace(trace.name(), trace);
  }

  FleetConfig config;
  config.proxies = 3;
  config.cooperative_push = true;
  config.relay_latency = 0.5;
  config.engine.typed_wire = typed_wire;
  config.engine.rtt = 0.1;
  ProxyFleet fleet(sim, origin, config);
  for (const UpdateTrace& trace : traces) {
    fleet.add_temporal_object_everywhere(trace.name(), [] {
      return std::make_unique<LimdPolicy>(
          LimdPolicy::Config::paper_defaults(600.0));
    });
  }
  fleet.add_delta_group({{0, "/object/0"}, {1, "/object/1"}, {2, "/object/2"}},
                        300.0);
  fleet.start();
  sim.run_until(kHorizon);

  RunArtifacts artifacts;
  for (std::size_t p = 0; p < fleet.size(); ++p) {
    const auto& records = fleet.proxy(p).poll_log().records();
    artifacts.records.insert(artifacts.records.end(), records.begin(),
                             records.end());
    for (const UpdateTrace& trace : traces) {
      artifacts.ttr_series.push_back(fleet.proxy(p).ttr_series(trace.name()));
    }
    for (const std::string& uri : fleet.proxy(p).cache().uris()) {
      artifacts.cache_entries.push_back(fleet.proxy(p).cache().at(uri));
    }
  }
  artifacts.fidelity = evaluate_temporal_fidelity(
      traces[0], successful_polls(fleet.proxy(1).poll_log(), "/object/0"),
      600.0, kHorizon);
  artifacts.origin_requests = origin.requests_served();
  return artifacts;
}

TEST(WireDifferential, CooperativeFleetRunsAreByteIdentical) {
  expect_identical(run_fleet(/*typed_wire=*/true),
                   run_fleet(/*typed_wire=*/false));
}

}  // namespace
}  // namespace broadway

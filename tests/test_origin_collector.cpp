// The paper's trace-collection methodology (§6.1.2) against ground truth.
#include "origin/collector.h"

#include <gtest/gtest.h>

#include "trace/generators.h"
#include "trace/paper_workloads.h"
#include "util/check.h"
#include "util/rng.h"

namespace broadway {
namespace {

TEST(TraceCollector, ReconstructsSparseUpdatesExactly) {
  // Updates much sparser than the 60 s sampling period: every one is
  // observed at its exact Last-Modified instant.
  Simulator sim;
  OriginServer origin(sim);
  const UpdateTrace truth("/page", {150.0, 400.0, 900.0}, 1200.0);
  origin.attach_update_trace("/page", truth);
  TraceCollector collector(sim, origin, "/page", 60.0);
  collector.start();
  sim.run_until(1200.0);

  const UpdateTrace observed = collector.reconstructed_trace(1200.0);
  EXPECT_EQ(observed.updates(), truth.updates());
  const auto quality = compare_reconstruction(truth, observed);
  EXPECT_DOUBLE_EQ(quality.recall, 1.0);
  EXPECT_EQ(collector.polls(), 20u);  // every 60 s; 60..1200 inclusive
}

TEST(TraceCollector, CollapsesSubPeriodBursts) {
  // Three updates within one sampling interval: only the newest is
  // visible via Last-Modified — the paper's traces have exactly this
  // quantisation.
  Simulator sim;
  OriginServer origin(sim);
  const UpdateTrace truth("/page", {100.0, 110.0, 115.0, 500.0}, 1000.0);
  origin.attach_update_trace("/page", truth);
  TraceCollector collector(sim, origin, "/page", 60.0);
  collector.start();
  sim.run_until(1000.0);

  const UpdateTrace observed = collector.reconstructed_trace(1000.0);
  EXPECT_EQ(observed.updates(), (std::vector<TimePoint>{115.0, 500.0}));
  const auto quality = compare_reconstruction(truth, observed);
  EXPECT_EQ(quality.true_updates, 4u);
  EXPECT_EQ(quality.observed_updates, 2u);
  EXPECT_DOUBLE_EQ(quality.recall, 0.5);
}

TEST(TraceCollector, PaperWorkloadsSurviveCollection) {
  // The Table 2 traces (update intervals >> 1 min) lose almost nothing to
  // 1-minute sampling — which is why the paper's methodology was sound.
  Simulator sim;
  OriginServer origin(sim);
  const UpdateTrace truth = make_cnn_fn_trace();
  origin.attach_update_trace(truth.name(), truth);
  TraceCollector collector(sim, origin, truth.name(), 60.0);
  collector.start();
  sim.run_until(truth.duration());

  const UpdateTrace observed =
      collector.reconstructed_trace(truth.duration(), truth.start_hour());
  const auto quality = compare_reconstruction(truth, observed);
  // The bursty diurnal stream has a few sub-minute update pairs, so
  // 1-minute sampling genuinely loses ~5% of instants — the same
  // quantisation the paper's own traces carry.
  EXPECT_GT(quality.recall, 0.9);
  EXPECT_NEAR(static_cast<double>(quality.observed_updates),
              static_cast<double>(quality.true_updates),
              0.1 * static_cast<double>(quality.true_updates));
}

TEST(TraceCollector, StopHaltsPolling) {
  Simulator sim;
  OriginServer origin(sim);
  origin.add_object("/page");
  TraceCollector collector(sim, origin, "/page", 60.0);
  collector.start();
  sim.run_until(300.0);
  const std::size_t polls_before = collector.polls();
  collector.stop();
  sim.run_until(900.0);
  EXPECT_EQ(collector.polls(), polls_before);
}

TEST(TraceCollector, Validation) {
  Simulator sim;
  OriginServer origin(sim);
  EXPECT_THROW(TraceCollector(sim, origin, "/x", 0.0), CheckFailure);
  // Polling a missing object fails loudly at the first poll.
  TraceCollector collector(sim, origin, "/missing", 60.0);
  collector.start();
  EXPECT_THROW(sim.run_until(120.0), CheckFailure);
}

TEST(CompareReconstruction, EmptyTruth) {
  const UpdateTrace truth("t", {}, 100.0);
  const UpdateTrace observed("o", {}, 100.0);
  const auto quality = compare_reconstruction(truth, observed);
  EXPECT_DOUBLE_EQ(quality.recall, 1.0);
}

}  // namespace
}  // namespace broadway

// Parameterised property sweeps (TEST_P) over the paper's tunables.
#include <gtest/gtest.h>

#include <memory>

#include "consistency/limd.h"
#include "harness/experiments.h"
#include "origin/origin_server.h"
#include "proxy/polling_engine.h"
#include "sim/simulator.h"
#include "trace/generators.h"
#include "trace/paper_workloads.h"
#include "trace/stock.h"
#include "util/rng.h"
#include "util/time.h"

namespace broadway {
namespace {

// ---- Δ sweep over the temporal baseline: fidelity is 1 by construction.

class BaselineDeltaSweep : public testing::TestWithParam<double> {};

TEST_P(BaselineDeltaSweep, PerfectFidelityAtEveryDelta) {
  const UpdateTrace trace = make_nytimes_reuters_trace();
  const auto result =
      run_baseline_individual(trace, minutes(GetParam()));
  EXPECT_DOUBLE_EQ(result.fidelity.fidelity_violations(), 1.0);
  EXPECT_DOUBLE_EQ(result.fidelity.fidelity_time(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(DeltaMinutes, BaselineDeltaSweep,
                         testing::Values(1.0, 2.0, 5.0, 10.0, 20.0, 30.0,
                                         45.0, 60.0));

// ---- Δ sweep over LIMD: never more polls than the baseline (modulo
// start-up), fidelity in range, TTR bounded.

class LimdDeltaSweep : public testing::TestWithParam<double> {};

TEST_P(LimdDeltaSweep, PollsBoundedByBaseline) {
  const UpdateTrace trace = make_cnn_fn_trace();
  TemporalRunConfig config;
  config.delta = minutes(GetParam());
  config.ttr_max = minutes(60.0);
  const auto limd = run_limd_individual(trace, config);
  const auto baseline =
      run_baseline_individual(trace, minutes(GetParam()));
  EXPECT_LE(static_cast<double>(limd.polls),
            1.1 * static_cast<double>(baseline.polls) + 5.0);
}

TEST_P(LimdDeltaSweep, FidelityWithinRange) {
  const UpdateTrace trace = make_cnn_fn_trace();
  TemporalRunConfig config;
  config.delta = minutes(GetParam());
  config.ttr_max = minutes(60.0);
  const auto result = run_limd_individual(trace, config);
  EXPECT_GE(result.fidelity.fidelity_violations(), 0.0);
  EXPECT_LE(result.fidelity.fidelity_violations(), 1.0);
  EXPECT_GE(result.fidelity.fidelity_time(), 0.0);
  EXPECT_LE(result.fidelity.fidelity_time(), 1.0);
}

TEST_P(LimdDeltaSweep, TtrStaysWithinBounds) {
  const UpdateTrace trace = make_guardian_trace();
  TemporalRunConfig config;
  config.delta = minutes(GetParam());
  config.ttr_max = minutes(60.0);
  const auto result = run_limd_individual(trace, config);
  for (const auto& [time, ttr] : result.ttr_series) {
    ASSERT_GE(ttr, config.delta - 1e-9);
    ASSERT_LE(ttr, minutes(60.0) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(DeltaMinutes, LimdDeltaSweep,
                         testing::Values(1.0, 5.0, 10.0, 20.0, 40.0, 60.0));

// ---- δ sweep over the mutual temporal approaches: orderings hold.

class MutualDeltaSweep : public testing::TestWithParam<double> {};

TEST_P(MutualDeltaSweep, PollAndFidelityOrderings) {
  const UpdateTrace a = make_cnn_fn_trace();
  const UpdateTrace b = make_nytimes_ap_trace();
  MutualTemporalRunConfig config;
  config.base.delta = minutes(10.0);
  config.delta_mutual = minutes(GetParam());

  config.approach = MutualApproach::kBaseline;
  const auto baseline = run_mutual_temporal(a, b, config);
  config.approach = MutualApproach::kTriggered;
  const auto triggered = run_mutual_temporal(a, b, config);
  config.approach = MutualApproach::kHeuristic;
  const auto heuristic = run_mutual_temporal(a, b, config);

  EXPECT_GE(triggered.polls, baseline.polls);
  EXPECT_GE(heuristic.polls, baseline.polls);
  EXPECT_GE(triggered.polls, heuristic.polls);
  EXPECT_GE(triggered.mutual.fidelity_time() + 1e-9,
            baseline.mutual.fidelity_time());
  EXPECT_GT(triggered.mutual.fidelity_time(), 0.98);
}

INSTANTIATE_TEST_SUITE_P(DeltaMutualMinutes, MutualDeltaSweep,
                         testing::Values(1.0, 5.0, 10.0, 20.0, 30.0));

// ---- δ sweep over the mutual value approaches on randomised stocks:
// partitioned never loses (much) fidelity to adaptive.

class MutualValueSeedSweep : public testing::TestWithParam<std::uint64_t> {};

TEST_P(MutualValueSeedSweep, PartitionedCompetitiveAcrossSeeds) {
  Rng rng(GetParam());
  StockWalkConfig fast;
  fast.name = "fast";
  fast.duration = hours(1.0);
  fast.updates = 700;
  fast.initial_value = 150.0;
  fast.min_value = 140.0;
  fast.max_value = 160.0;
  fast.step_sigma = 0.4;
  StockWalkConfig slow;
  slow.name = "slow";
  slow.duration = hours(1.0);
  slow.updates = 200;
  slow.initial_value = 40.0;
  slow.min_value = 39.0;
  slow.max_value = 41.0;
  slow.step_sigma = 0.03;
  Rng rng_fast = rng.fork();
  Rng rng_slow = rng.fork();
  const ValueTrace a = generate_stock_walk(rng_fast, fast);
  const ValueTrace b = generate_stock_walk(rng_slow, slow);

  MutualValueRunConfig config;
  config.delta = 1.0;
  config.approach = MutualValueApproach::kAdaptive;
  const auto adaptive = run_mutual_value(a, b, config);
  config.approach = MutualValueApproach::kPartitioned;
  const auto partitioned = run_mutual_value(a, b, config);

  EXPECT_GE(partitioned.mutual.fidelity_time() + 0.05,
            adaptive.mutual.fidelity_time());
  EXPECT_GE(partitioned.mutual.fidelity_time(), 0.5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutualValueSeedSweep,
                         testing::Values(11u, 22u, 33u, 44u, 55u));

// ---- crash recovery mid-run keeps the system live and bounded.

class CrashRecoverySweep : public testing::TestWithParam<double> {};

TEST_P(CrashRecoverySweep, RunsToCompletionAfterCrash) {
  // Crash at various fractions of the trace; the run must finish with
  // sane accounting (polls continue after recovery).
  const UpdateTrace trace = make_nytimes_ap_trace();
  Simulator sim;
  OriginServer origin(sim);
  PollingEngine engine(sim, origin);
  origin.attach_update_trace(trace.name(), trace);
  engine.add_temporal_object(
      trace.name(), std::make_unique<LimdPolicy>(
                        LimdPolicy::Config::paper_defaults(minutes(10.0))));
  engine.start();
  const TimePoint crash_at = trace.duration() * GetParam();
  sim.run_until(crash_at);
  const std::size_t polls_before = engine.polls_performed();
  engine.crash_and_recover();
  sim.run_until(trace.duration());
  EXPECT_GT(engine.polls_performed(), polls_before);
  EXPECT_TRUE(engine.cache().contains(trace.name()));
}

INSTANTIATE_TEST_SUITE_P(CrashFractions, CrashRecoverySweep,
                         testing::Values(0.1, 0.5, 0.9));

}  // namespace
}  // namespace broadway

#include "consistency/function.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace broadway {
namespace {

TEST(DifferenceFunction, EvaluatesAndExposesCoefficients) {
  DifferenceFunction f;
  EXPECT_EQ(f.arity(), 2u);
  const double values[] = {160.5, 36.25};
  EXPECT_DOUBLE_EQ(f.evaluate(values), 124.25);
  const auto coefficients = f.linear_coefficients();
  ASSERT_TRUE(coefficients.has_value());
  EXPECT_EQ(*coefficients, (std::vector<double>{1.0, -1.0}));
}

TEST(DifferenceFunction, ArityEnforced) {
  DifferenceFunction f;
  const double values[] = {1.0, 2.0, 3.0};
  EXPECT_THROW(f.evaluate(values), CheckFailure);
}

TEST(WeightedSumFunction, SportsScoreExample) {
  // Overall score as the sum of player scores (paper §1 example 2).
  WeightedSumFunction f({1.0, 1.0, 1.0});
  const double values[] = {12.0, 31.0, 7.0};
  EXPECT_DOUBLE_EQ(f.evaluate(values), 50.0);
  EXPECT_EQ(f.arity(), 3u);
}

TEST(WeightedSumFunction, IndexExample) {
  // A two-stock cap-weighted index.
  WeightedSumFunction f({0.7, 0.3});
  const double values[] = {100.0, 200.0};
  EXPECT_DOUBLE_EQ(f.evaluate(values), 130.0);
  ASSERT_TRUE(f.linear_coefficients().has_value());
}

TEST(WeightedSumFunction, Validation) {
  EXPECT_THROW(WeightedSumFunction({}), CheckFailure);
  WeightedSumFunction f({1.0, 2.0});
  const double one[] = {1.0};
  EXPECT_THROW(f.evaluate(one), CheckFailure);
}

TEST(RatioFunction, EvaluatesAndIsNonlinear) {
  RatioFunction f;
  const double values[] = {10.0, 4.0};
  EXPECT_DOUBLE_EQ(f.evaluate(values), 2.5);
  EXPECT_FALSE(f.linear_coefficients().has_value());
}

TEST(RatioFunction, RejectsZeroDenominator) {
  RatioFunction f;
  const double values[] = {1.0, 0.0};
  EXPECT_THROW(f.evaluate(values), CheckFailure);
}

TEST(MaxFunction, EvaluatesAndIsNonlinear) {
  MaxFunction f(3);
  const double values[] = {1.0, 5.0, 3.0};
  EXPECT_DOUBLE_EQ(f.evaluate(values), 5.0);
  EXPECT_FALSE(f.linear_coefficients().has_value());
  EXPECT_THROW(MaxFunction(0), CheckFailure);
}

TEST(Functions, NamesAreStable) {
  EXPECT_EQ(DifferenceFunction().name(), "difference");
  EXPECT_EQ(WeightedSumFunction({1.0}).name(), "weighted-sum");
  EXPECT_EQ(RatioFunction().name(), "ratio");
  EXPECT_EQ(MaxFunction(2).name(), "max");
}

}  // namespace
}  // namespace broadway

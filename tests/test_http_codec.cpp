#include "http/codec.h"

#include <gtest/gtest.h>

#include "http/extensions.h"

namespace broadway {
namespace {

TEST(Codec, SerializesRequestLine) {
  Request req;
  req.method = Method::kGet;
  req.uri = "/sports/scores";
  const std::string wire = serialize(req);
  EXPECT_EQ(wire.substr(0, wire.find("\r\n")),
            "GET /sports/scores HTTP/1.1");
  EXPECT_NE(wire.find("\r\n\r\n"), std::string::npos);
}

TEST(Codec, EmptyUriBecomesRoot) {
  Request req;
  const std::string wire = serialize(req);
  EXPECT_EQ(wire.substr(0, wire.find("\r\n")), "GET / HTTP/1.1");
}

TEST(Codec, RequestRoundTrip) {
  Request req = Request::conditional_get("/news/page.html", 1234.5);
  req.headers.add("Accept", "text/html");
  const Request parsed = parse_request(serialize(req));
  EXPECT_EQ(parsed.method, Method::kGet);
  EXPECT_EQ(parsed.uri, "/news/page.html");
  EXPECT_EQ(*parsed.headers.get("accept"), "text/html");
  EXPECT_NEAR(*get_if_modified_since(parsed.headers), 1234.5, 1e-3);
}

TEST(Codec, ResponseRoundTripWithBody) {
  Response resp;
  resp.status = StatusCode::kOk;
  set_last_modified(resp.headers, 777.25);
  resp.body = "<html>story v3</html>";
  const Response parsed = parse_response(serialize(resp));
  EXPECT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.body, resp.body);
  EXPECT_NEAR(*get_last_modified(parsed.headers), 777.25, 1e-3);
  // Content-Length was synthesised and verified.
  EXPECT_EQ(*parsed.headers.get("Content-Length"),
            std::to_string(resp.body.size()));
}

TEST(Codec, NotModifiedRoundTrip) {
  Response resp;
  resp.status = StatusCode::kNotModified;
  const Response parsed = parse_response(serialize(resp));
  EXPECT_TRUE(parsed.not_modified());
  EXPECT_TRUE(parsed.body.empty());
}

TEST(Codec, ParseRequestErrors) {
  EXPECT_THROW(parse_request("GET /"), HttpParseError);  // no blank line
  EXPECT_THROW(parse_request("GET / HTTP/1.0\r\n\r\n"), HttpParseError);
  EXPECT_THROW(parse_request("POST / HTTP/1.1\r\n\r\n"), HttpParseError);
  EXPECT_THROW(parse_request("GET /too many words HTTP/1.1\r\n\r\n"),
               HttpParseError);
  EXPECT_THROW(parse_request("GET / HTTP/1.1\r\nBadHeader\r\n\r\n"),
               HttpParseError);
  EXPECT_THROW(parse_request("GET / HTTP/1.1\r\n: empty-name\r\n\r\n"),
               HttpParseError);
}

TEST(Codec, ParseResponseErrors) {
  EXPECT_THROW(parse_response("HTTP/1.1 200 OK"), HttpParseError);
  EXPECT_THROW(parse_response("HTTP/1.1 abc OK\r\n\r\n"), HttpParseError);
  EXPECT_THROW(parse_response("HTTP/1.1 999 Weird\r\n\r\n"), HttpParseError);
  EXPECT_THROW(parse_response("SPDY/3 200 OK\r\n\r\n"), HttpParseError);
  // Content-Length that disagrees with the body.
  EXPECT_THROW(parse_response("HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nabc"),
               HttpParseError);
}

TEST(Codec, HeaderWhitespaceTrimmed) {
  const Request parsed =
      parse_request("GET / HTTP/1.1\r\nX-Pad:    spaced out   \r\n\r\n");
  EXPECT_EQ(*parsed.headers.get("X-Pad"), "spaced out");
}

TEST(Codec, BodyMayContainCrlf) {
  Response resp;
  resp.status = StatusCode::kOk;
  resp.body = "line1\r\n\r\nline2";
  const Response parsed = parse_response(serialize(resp));
  EXPECT_EQ(parsed.body, resp.body);
}

}  // namespace
}  // namespace broadway

// Calibration tests: the synthetic workloads must match the paper's
// Table 2 / Table 3 characteristics (see DESIGN.md's substitution table).
#include "trace/paper_workloads.h"

#include <gtest/gtest.h>

#include "trace/trace_stats.h"
#include "util/time.h"

namespace broadway {
namespace {

TEST(PaperWorkloads, CnnFnMatchesTable2) {
  const UpdateTrace trace = make_cnn_fn_trace();
  EXPECT_EQ(trace.count(), 113u);
  EXPECT_NEAR(trace.duration(), hours(49.5), 1.0);
  // "every 26 min" average.
  EXPECT_NEAR(to_minutes(trace.mean_update_interval()), 26.0, 0.5);
}

TEST(PaperWorkloads, NytimesApMatchesTable2) {
  const UpdateTrace trace = make_nytimes_ap_trace();
  EXPECT_EQ(trace.count(), 233u);
  EXPECT_NEAR(to_minutes(trace.mean_update_interval()), 11.6, 0.2);
}

TEST(PaperWorkloads, NytimesReutersMatchesTable2) {
  const UpdateTrace trace = make_nytimes_reuters_trace();
  EXPECT_EQ(trace.count(), 133u);
  EXPECT_NEAR(to_minutes(trace.mean_update_interval()), 20.3, 0.3);
}

TEST(PaperWorkloads, GuardianMatchesTable2) {
  const UpdateTrace trace = make_guardian_trace();
  EXPECT_EQ(trace.count(), 902u);
  EXPECT_NEAR(to_minutes(trace.mean_update_interval()), 4.9, 0.1);
}

TEST(PaperWorkloads, AllTemporalTracesInTableOrder) {
  const auto traces = make_all_temporal_traces();
  ASSERT_EQ(traces.size(), 4u);
  EXPECT_EQ(traces[0].name(), "CNN/FN");
  EXPECT_EQ(traces[1].name(), "NYTimes/AP");
  EXPECT_EQ(traces[2].name(), "NYTimes/Reuters");
  EXPECT_EQ(traces[3].name(), "Guardian");
}

TEST(PaperWorkloads, NewsTracesQuietAtNight) {
  // The Fig. 4(a) shape: far fewer updates in the small hours.
  for (const UpdateTrace& trace : make_all_temporal_traces()) {
    std::size_t night = 0;
    for (TimePoint t : trace.updates()) {
      const double h = hour_of_day(t + hours(trace.start_hour()));
      if (h >= 1.0 && h < 6.0) ++night;
    }
    EXPECT_LT(static_cast<double>(night) / trace.count(), 0.06)
        << trace.name();
  }
}

TEST(PaperWorkloads, AttMatchesTable3) {
  const ValueTrace trace = make_att_stock_trace();
  EXPECT_EQ(trace.count(), 653u);
  EXPECT_NEAR(trace.duration(), hours(3.0), 1e-6);
  EXPECT_GE(trace.min_value(), 35.8);
  EXPECT_LE(trace.max_value(), 36.5);
  // The band must actually be used (Table 3 reports observed extremes).
  EXPECT_LT(trace.min_value(), 36.0);
  EXPECT_GT(trace.max_value(), 36.2);
}

TEST(PaperWorkloads, YahooMatchesTable3) {
  const ValueTrace trace = make_yahoo_stock_trace();
  EXPECT_EQ(trace.count(), 2204u);
  EXPECT_NEAR(trace.duration(), hours(3.0), 1e-6);
  EXPECT_GE(trace.min_value(), 160.2);
  EXPECT_LE(trace.max_value(), 171.2);
  EXPECT_LT(trace.min_value(), 163.0);
  EXPECT_GT(trace.max_value(), 168.0);
}

TEST(PaperWorkloads, YahooIsTheVolatileOne) {
  // §6.1.2: Yahoo "characterized by frequent changes", AT&T by infrequent
  // changes in value.
  const ValueTraceStats att = compute_stats(make_att_stock_trace());
  const ValueTraceStats yahoo = compute_stats(make_yahoo_stock_trace());
  EXPECT_GT(yahoo.num_updates, 3 * att.num_updates);
  EXPECT_GT(yahoo.mean_abs_change, 2.0 * att.mean_abs_change);
  EXPECT_GT(yahoo.max_value - yahoo.min_value,
            5.0 * (att.max_value - att.min_value));
}

TEST(PaperWorkloads, SeedChangesTraceButNotCalibration) {
  const UpdateTrace a = make_cnn_fn_trace(1);
  const UpdateTrace b = make_cnn_fn_trace(2);
  EXPECT_EQ(a.count(), b.count());  // calibration invariant
  EXPECT_NE(a.updates(), b.updates());
}

TEST(PaperWorkloads, DefaultSeedReproducible) {
  const UpdateTrace a = make_guardian_trace();
  const UpdateTrace b = make_guardian_trace();
  EXPECT_EQ(a.updates(), b.updates());
  const ValueTrace va = make_yahoo_stock_trace();
  const ValueTrace vb = make_yahoo_stock_trace();
  ASSERT_EQ(va.count(), vb.count());
  for (std::size_t i = 0; i < va.count(); ++i) {
    EXPECT_DOUBLE_EQ(va.steps()[i].value, vb.steps()[i].value);
  }
}

TEST(TraceStats, UpdateStatsComputed) {
  const UpdateTraceStats stats = compute_stats(make_cnn_fn_trace());
  EXPECT_EQ(stats.num_updates, 113u);
  EXPECT_GT(stats.gap_cv, 0.5);  // diurnal shape makes gaps irregular
  EXPECT_GT(stats.max_gap, hours(1.0));  // the overnight lull
  EXPECT_LT(stats.min_gap, minutes(15.0));
}

}  // namespace
}  // namespace broadway

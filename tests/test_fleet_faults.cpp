// Fleet-level fault injection (fleet/faults.h): proxy crash/recovery,
// relay loss with capped-backoff retries, dark-window client service and
// δ-group sibling failover, all on the single-simulator ProxyFleet (the
// sharded differentials pin that every behavior here survives sharding
// byte-for-byte).
#include "fleet/faults.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "client/client_traffic.h"
#include "consistency/limd.h"
#include "fleet/fleet_group.h"
#include "fleet/proxy_fleet.h"
#include "origin/origin_server.h"
#include "proxy/polling_engine.h"
#include "sim/simulator.h"
#include "trace/generators.h"
#include "trace/update_trace.h"
#include "util/check.h"
#include "util/rng.h"

namespace broadway {
namespace {

LimdPolicy::Config limd_config(Duration delta = 600.0,
                               Duration ttr_max = 3600.0) {
  return LimdPolicy::Config::paper_defaults(delta, ttr_max);
}

ProxyFleet::PolicyFactory limd_factory(Duration delta = 600.0,
                                       Duration ttr_max = 3600.0) {
  return [delta, ttr_max] {
    return std::make_unique<LimdPolicy>(limd_config(delta, ttr_max));
  };
}

UpdateTrace irregular_trace(const std::string& name, std::uint64_t seed,
                            Duration horizon) {
  Rng rng(seed);
  std::vector<TimePoint> updates;
  TimePoint t = 0.0;
  for (;;) {
    t += rng.uniform(40.0, 500.0);
    if (t >= horizon) break;
    updates.push_back(t);
  }
  return UpdateTrace(name, std::move(updates), horizon);
}

// ---- schedule validation ---------------------------------------------------

TEST(FaultSchedule, ValidateRejectsMalformedSchedules) {
  {
    FaultSchedule faults;
    faults.relay_loss = 1.0;  // certain loss would retry forever
    EXPECT_THROW(faults.validate(4), CheckFailure);
  }
  {
    FaultSchedule faults;
    faults.relay_loss = -0.1;
    EXPECT_THROW(faults.validate(4), CheckFailure);
  }
  {
    FaultSchedule faults;
    faults.relay_jitter_max = -1.0;
    EXPECT_THROW(faults.validate(4), CheckFailure);
  }
  {
    FaultSchedule faults;
    faults.retry_backoff_base = 0.0;
    EXPECT_THROW(faults.validate(4), CheckFailure);
  }
  {
    FaultSchedule faults;
    faults.retry_backoff_base = 2.0;
    faults.retry_backoff_cap = 1.0;  // cap below base
    EXPECT_THROW(faults.validate(4), CheckFailure);
  }
  {
    FaultSchedule faults;
    faults.crashes.push_back({7, {{100.0, 200.0}}});  // proxy out of range
    EXPECT_THROW(faults.validate(4), CheckFailure);
    EXPECT_NO_THROW(faults.validate(8));
    EXPECT_NO_THROW(faults.validate(SIZE_MAX));  // slice view: ids unknown
  }
  {
    FaultSchedule faults;
    faults.crashes.push_back({0, {{0.0, 200.0}}});  // crash at t=0
    EXPECT_THROW(faults.validate(4), CheckFailure);
  }
  {
    FaultSchedule faults;
    faults.crashes.push_back({0, {{200.0, 100.0}}});  // empty window
    EXPECT_THROW(faults.validate(4), CheckFailure);
  }
  {
    FaultSchedule faults;
    faults.crashes.push_back({0, {{100.0, 300.0}, {250.0, 400.0}}});
    EXPECT_THROW(faults.validate(4), CheckFailure);  // overlapping
  }
  {
    FaultSchedule faults;
    faults.crashes.push_back({0, {{100.0, 200.0}}});
    faults.crashes.push_back({0, {{300.0, 400.0}}});  // duplicate proxy
    EXPECT_THROW(faults.validate(4), CheckFailure);
  }
  {
    FaultSchedule faults;  // a clean schedule passes
    faults.crashes.push_back({1, {{100.0, 200.0}, {200.0, 250.0}}});
    faults.relay_loss = 0.2;
    faults.relay_jitter_max = 0.5;
    faults.relay_retry_limit = 4;
    EXPECT_NO_THROW(faults.validate(4));
  }
}

TEST(FaultSchedule, DarknessAndTransitionsArePureTimeFunctions) {
  FaultSchedule faults;
  faults.crashes.push_back({1, {{100.0, 200.0}, {300.0, 450.0}}});
  EXPECT_FALSE(faults.dark(1, 99.9));
  EXPECT_TRUE(faults.dark(1, 100.0));  // [crash_at, recover_at)
  EXPECT_TRUE(faults.dark(1, 199.9));
  EXPECT_FALSE(faults.dark(1, 200.0));
  EXPECT_TRUE(faults.dark(1, 350.0));
  EXPECT_FALSE(faults.dark(1, 450.0));
  EXPECT_FALSE(faults.dark(0, 150.0));  // other proxies never dark

  EXPECT_EQ(faults.next_transition_after(1, 0.0), 100.0);
  EXPECT_EQ(faults.next_transition_after(1, 100.0), 200.0);
  EXPECT_EQ(faults.next_transition_after(1, 250.0), 300.0);
  EXPECT_EQ(faults.next_transition_after(1, 450.0), kTimeInfinity);
  EXPECT_EQ(faults.next_transition_after(0, 0.0), kTimeInfinity);

  EXPECT_EQ(faults.total_dark_time(1000.0), 250.0);
  EXPECT_EQ(faults.total_dark_time(350.0), 150.0);  // clamped per window

  // Backoff: base * 2^k, capped.
  FaultSchedule backoff;
  backoff.retry_backoff_base = 1.5;
  backoff.retry_backoff_cap = 10.0;
  EXPECT_EQ(backoff.retry_backoff(0), 1.5);
  EXPECT_EQ(backoff.retry_backoff(1), 3.0);
  EXPECT_EQ(backoff.retry_backoff(2), 6.0);
  EXPECT_EQ(backoff.retry_backoff(3), 10.0);
  EXPECT_EQ(backoff.retry_backoff(20), 10.0);
}

// ---- the relay fault ledger ------------------------------------------------

// Under relay loss + jitter + retries, the ledger invariant
//   relays_sent == relays_delivered + relays_in_flight + relays_lost
// holds at *every* paused horizon, not just at the end, and every loss is
// eventually retried (the backoff cap bounds how long a retry can lag its
// loss, so running one cap past the measurement point drains them).
TEST(FleetFaults, RelayLedgerBalancesAtEveryPauseAndLossesRetry) {
  const Duration horizon = 8000.0;
  Simulator sim;
  OriginServer origin(sim);
  FleetConfig config;
  config.proxies = 3;
  config.cooperative_push = true;
  config.relay_latency = 0.7;
  config.engine.rtt = 0.1;
  config.faults.relay_loss = 0.15;
  config.faults.relay_jitter_max = 0.4;
  config.faults.retry_backoff_base = 0.9;
  config.faults.retry_backoff_cap = 7.2;
  config.faults.relay_retry_limit = 8;
  ProxyFleet fleet(sim, origin, config);
  const auto factory = limd_factory(400.0, 1200.0);
  for (int i = 0; i < 6; ++i) {
    const std::string uri = "/obj/" + std::to_string(i);
    origin.attach_update_trace(uri,
                               irregular_trace(uri, 900 + i, horizon));
    fleet.add_temporal_object_everywhere(uri, factory);
  }
  fleet.start();

  // Deliberately non-harmonic pause instants: relays and retries are
  // routinely mid-flight at the pause.
  bool paused_with_in_flight = false;
  for (TimePoint h = 97.0; h < horizon; h += 97.0) {
    sim.run_until(h);
    EXPECT_EQ(fleet.relays_sent(),
              fleet.relays_delivered() + fleet.relays_in_flight() +
                  fleet.relays_lost())
        << "ledger out of balance at t=" << h;
    if (fleet.relays_in_flight() > 0) paused_with_in_flight = true;
  }
  EXPECT_TRUE(paused_with_in_flight);

  sim.run_until(horizon);
  const std::size_t lost_at_horizon = fleet.relays_lost();
  EXPECT_GT(lost_at_horizon, 0u);
  EXPECT_GT(fleet.relays_retried(), 0u);
  EXPECT_GT(fleet.relays_delivered(), 0u);
  // A retry is an attempt like any other: it was counted in sent, so
  // retried can never exceed sent, and only losses spawn retries.
  EXPECT_LE(fleet.relays_retried(), fleet.relays_lost());

  // Every loss up to the horizon has fired its retry one backoff cap
  // later (with the retry limit at 8 and loss at 0.15, abandoning a relay
  // takes nine consecutive losses — it does not happen in this run).
  sim.run_until(horizon + config.faults.retry_backoff_cap + 0.1);
  EXPECT_GE(fleet.relays_retried(), lost_at_horizon);
  EXPECT_EQ(fleet.relays_sent(),
            fleet.relays_delivered() + fleet.relays_in_flight() +
                fleet.relays_lost());
}

// ---- crash / recovery ------------------------------------------------------

// A crashed proxy polls nothing inside its window; recovery re-arms every
// schedule at the policy's *initial* TTR (§3.1: recovering from a proxy
// failure resets the TTRs of all objects to their starting value), so the
// first post-recovery poll fires exactly initial_ttr after recover_at.
TEST(FleetFaults, CrashStopsPollingAndRecoveryResetsTtr) {
  const Duration horizon = 9000.0;
  const TimePoint crash_at = 4000.0;
  const TimePoint recover_at = 5200.0;
  Simulator sim;
  OriginServer origin(sim);
  FleetConfig config;
  config.proxies = 2;
  config.cooperative_push = true;
  config.relay_latency = 0.7;
  // No uri is shared, so no relays interfere with the poll schedules.
  config.faults.crashes.push_back({0, {{crash_at, recover_at}}});
  ProxyFleet fleet(sim, origin, config);
  origin.attach_update_trace(
      "/solo", UpdateTrace("/solo", generate_periodic(180.0, 35.0, horizon),
                           horizon));
  origin.attach_update_trace(
      "/other", UpdateTrace("/other",
                            generate_periodic(220.0, 60.0, horizon), horizon));
  fleet.add_temporal_object(0, "/solo",
                            std::make_unique<LimdPolicy>(limd_config()));
  fleet.add_temporal_object(1, "/other",
                            std::make_unique<LimdPolicy>(limd_config()));
  fleet.start();
  sim.run_until(horizon);

  const auto& records = fleet.proxy(0).poll_log().records();
  ASSERT_FALSE(records.empty());
  bool before = false;
  const PollRecord* first_after = nullptr;
  for (const PollRecord& record : records) {
    EXPECT_FALSE(record.snapshot_time >= crash_at &&
                 record.snapshot_time < recover_at)
        << "dark proxy polled at t=" << record.snapshot_time;
    if (record.snapshot_time < crash_at) before = true;
    if (record.snapshot_time >= recover_at && first_after == nullptr) {
      first_after = &record;
    }
  }
  EXPECT_TRUE(before);
  ASSERT_NE(first_after, nullptr) << "proxy never resumed after recovery";
  const Duration initial =
      LimdPolicy(limd_config()).initial_ttr();
  EXPECT_DOUBLE_EQ(first_after->snapshot_time, recover_at + initial);
  EXPECT_EQ(first_after->cause, PollCause::kScheduled);

  // The sibling never notices: proxy 1 keeps polling through the window.
  bool sibling_polled_inside = false;
  for (const PollRecord& record : fleet.proxy(1).poll_log().records()) {
    if (record.snapshot_time >= crash_at && record.snapshot_time < recover_at)
      sibling_polled_inside = true;
  }
  EXPECT_TRUE(sibling_polled_inside);
}

// Relays addressed to a dark proxy are dropped on the floor: the channel
// delivered them (they leave in_flight into delivered), the destination
// never applies them, and the drop is attributed in relays_dropped_dark.
TEST(FleetFaults, RelaysToDarkProxyAreDroppedAndAttributed) {
  const Duration horizon = 9000.0;
  const TimePoint crash_at = 3000.0;
  const TimePoint recover_at = 6000.0;
  Simulator sim;
  OriginServer origin(sim);
  FleetConfig config;
  config.proxies = 3;
  config.cooperative_push = true;
  config.relay_latency = 0.7;
  config.faults.crashes.push_back({2, {{crash_at, recover_at}}});
  ProxyFleet fleet(sim, origin, config);
  const auto factory = limd_factory(400.0, 1200.0);
  for (int i = 0; i < 4; ++i) {
    const std::string uri = "/obj/" + std::to_string(i);
    origin.attach_update_trace(uri,
                               irregular_trace(uri, 1700 + i, horizon));
    fleet.add_temporal_object_everywhere(uri, factory);
  }
  fleet.start();
  sim.run_until(horizon);

  EXPECT_GT(fleet.relays_dropped_dark(), 0u);
  // Dropped relays are still deliveries, never applications.
  EXPECT_EQ(fleet.relays_sent(),
            fleet.relays_delivered() + fleet.relays_in_flight() +
                fleet.relays_lost());
  EXPECT_LE(fleet.relays_applied(),
            fleet.relays_delivered() - fleet.relays_dropped_dark());
  // Nothing lands in the dark proxy's log during the outage: no own
  // polls (timers stopped) and no relay records (drops are unrecorded).
  for (const PollRecord& record : fleet.proxy(2).poll_log().records()) {
    EXPECT_FALSE(record.snapshot_time >= crash_at &&
                 record.snapshot_time < recover_at)
        << to_string(record.cause) << " at t=" << record.snapshot_time;
  }
}

// ---- dark-window client service --------------------------------------------

// Client reads at a dark proxy are served stale-or-miss from the disk
// cache: each one is flagged dark, a dark miss is classified
// MissReason::kProxyDark and never demand-fills, and the degradation
// counters (dark_reads / dark_stale / dark_misses) attribute exactly the
// reads served inside outage windows of the crashed proxy.
TEST(FleetFaults, DarkClientReadsAreClassifiedAndNeverFill) {
  const Duration horizon = 9000.0;
  const TimePoint crash_at = 2500.0;
  const TimePoint recover_at = 4800.0;
  Simulator sim;
  OriginServer origin(sim);
  FleetConfig config;
  config.proxies = 3;
  config.cooperative_push = true;
  config.relay_latency = 0.7;
  config.engine.rtt = 0.1;
  // Lossy demand-fill setup (the client-differential constants): initial
  // fetches and fills get lost and retry slowly, so some objects are
  // still uncached when the outage begins — those reads become dark
  // misses rather than stale hits.
  config.engine.demand_fill = true;
  config.engine.loss_probability = 0.25;
  config.engine.retry_delay = 600.0;
  ClientTrafficConfig traffic;
  traffic.request_rate = 1.5;
  traffic.zipf_exponent = 0.9;
  traffic.seed = 17;
  traffic.record_requests = true;
  traffic.session_locality = 0.3;
  traffic.session_objects = 3;
  config.client_traffic = traffic;
  config.faults.crashes.push_back({0, {{crash_at, recover_at}}});
  ProxyFleet fleet(sim, origin, config);
  const auto factory = limd_factory();
  for (int i = 0; i < 4; ++i) {
    const std::string uri = "/obj/" + std::to_string(i);
    origin.attach_update_trace(uri,
                               irregular_trace(uri, 4200 + i, horizon));
    fleet.add_temporal_object_everywhere(uri, factory);
  }
  fleet.start();
  sim.run_until(horizon);

  const ClientMetrics merged = fleet.merged_client_metrics();
  EXPECT_GT(merged.dark_reads, 0u);
  EXPECT_GT(merged.dark_stale, 0u);
  EXPECT_LE(merged.dark_stale + merged.dark_misses, merged.dark_reads);
  EXPECT_LE(merged.dark_reads, merged.requests);

  // Only the crashed proxy accumulates dark metrics.
  for (std::size_t p = 1; p < fleet.size(); ++p) {
    const ClientMetrics metrics = fleet.client_traffic().metrics(p);
    EXPECT_EQ(metrics.dark_reads, 0u) << "proxy " << p;
    EXPECT_EQ(metrics.dark_stale, 0u) << "proxy " << p;
    EXPECT_EQ(metrics.dark_misses, 0u) << "proxy " << p;
  }

  // Record-level cross-check: a read is flagged dark exactly when proxy 0
  // served it inside the window, and dark reads never fill.
  std::uint64_t dark_records = 0;
  for (const ClientRequestRecord& record : fleet.merged_client_records()) {
    const bool in_window = record.proxy == 0 && record.time >= crash_at &&
                           record.time < recover_at;
    EXPECT_EQ(record.read.dark, in_window) << "read at t=" << record.time;
    if (record.read.dark) {
      ++dark_records;
      EXPECT_FALSE(record.read.filled);
    }
  }
  EXPECT_EQ(dark_records, merged.dark_reads);
}

// The distinct miss classification: a tracked object with no cached copy
// misses with MissReason::kUncached on a live proxy but
// MissReason::kProxyDark on a dark one — and a dark miss never
// demand-fills even with fills enabled.  Poll loss with a long retry
// delay keeps some initial fetches unresolved past the crash (the crash
// then kills the pending retries), so uncached objects provably exist on
// both sides of the crash instant.
TEST(FleetFaults, UncachedDarkReadsMissWithProxyDarkReason) {
  const Duration horizon = 6000.0;
  const TimePoint crash_at = 500.0;
  const TimePoint recover_at = 1700.0;
  Simulator sim;
  OriginServer origin(sim);
  FleetConfig config;
  config.proxies = 2;
  config.cooperative_push = false;  // no relays: only own fetches cache
  config.engine.loss_probability = 0.5;
  config.engine.retry_delay = 900.0;
  config.faults.crashes.push_back({0, {{crash_at, recover_at}}});
  ProxyFleet fleet(sim, origin, config);
  const auto factory = limd_factory();
  std::vector<std::string> uris;
  for (int i = 0; i < 6; ++i) {
    const std::string uri = "/obj/" + std::to_string(i);
    origin.attach_update_trace(uri, irregular_trace(uri, 77 + i, horizon));
    fleet.add_temporal_object_everywhere(uri, factory);
    uris.push_back(uri);
  }
  fleet.start();

  // Before the crash: some initial fetches were lost and wait on their
  // 900 s retries, so their objects miss with kUncached.
  sim.run_until(450.0);
  std::vector<ObjectId> uncached;
  for (const std::string& uri : uris) {
    const ObjectId id = fleet.proxy(0).uri_table().find(uri);
    const auto read = fleet.proxy(0).serve_client_read(id);
    EXPECT_FALSE(read.dark);
    if (!read.hit) {
      EXPECT_EQ(read.miss_reason,
                PollingEngine::ClientRead::MissReason::kUncached);
      uncached.push_back(id);
    }
  }
  ASSERT_FALSE(uncached.empty()) << "no initial fetch was lost";

  // Inside the window the same objects still miss — the crash killed the
  // pending retries — but now with the outage classification, and they
  // never demand-fill.
  sim.run_until(600.0);
  EXPECT_TRUE(fleet.proxy(0).dark());
  for (const ObjectId id : uncached) {
    const auto read = fleet.proxy(0).serve_client_read(id);
    EXPECT_TRUE(read.dark);
    EXPECT_FALSE(read.hit);
    EXPECT_FALSE(read.filled);
    EXPECT_EQ(read.miss_reason,
              PollingEngine::ClientRead::MissReason::kProxyDark);
  }

  // After recovery the re-armed schedules fetch them: the same reads hit.
  sim.run_until(horizon);
  EXPECT_FALSE(fleet.proxy(0).dark());
  for (const ObjectId id : uncached) {
    const auto read = fleet.proxy(0).serve_client_read(id);
    EXPECT_FALSE(read.dark);
    EXPECT_TRUE(read.hit);
  }
}

// ---- sibling failover ------------------------------------------------------

// While a δ-group member's proxy is dark, the deterministic designated
// sibling absorbs its poll responsibility (failover_triggers counts those
// redirected triggers); on recovery the owner re-homes and the counter
// freezes.  A control fleet without the crash never fails over, and its
// sibling's poll log is identical to the faulty run's up to the crash.
//
// Topology: the group couples (0, "/a") with (1, "/b").  "/b" updates
// fast, so proxy 1's polls keep requesting "/a" refreshes within δ; "/a"
// updates rarely, so its trackers' LIMD TTRs grow past δ and the
// requests actually trigger.  Proxy 2 also tracks "/a" — it is the
// designated failover tracker while proxy 0 (the owner) is dark.
TEST(FleetFaults, SiblingFailoverAbsorbsDarkOwnerAndHandsBack) {
  const Duration horizon = 9000.0;
  const TimePoint crash_at = 3000.0;
  const TimePoint recover_at = 5000.0;
  const Duration delta = 300.0;

  struct Run {
    Simulator sim;
    OriginServer origin;
    std::unique_ptr<ProxyFleet> fleet;
    FleetDeltaGroup* group = nullptr;
    Run() : origin(sim) {}
  };
  const auto build = [&](Run& run, bool crashed) {
    FleetConfig config;
    config.proxies = 3;
    config.cooperative_push = true;
    config.relay_latency = 0.7;
    if (crashed) {
      config.faults.crashes.push_back({0, {{crash_at, recover_at}}});
    }
    run.fleet = std::make_unique<ProxyFleet>(run.sim, run.origin, config);
    // "/a" updates exactly once, early: afterwards its trackers' TTRs
    // climb to ttr_max (2400 s), so the responsible proxy's copy spends
    // most of each poll gap more than δ away from both its last and its
    // next refresh — the condition a trigger requires.
    run.origin.attach_update_trace(
        "/a", UpdateTrace("/a", {500.0}, horizon));
    run.origin.attach_update_trace(
        "/b", UpdateTrace("/b", generate_periodic(120.0, 15.0, horizon),
                          horizon));
    run.fleet->add_temporal_object(
        0, "/a", std::make_unique<LimdPolicy>(limd_config(delta, 2400.0)));
    run.fleet->add_temporal_object(
        2, "/a", std::make_unique<LimdPolicy>(limd_config(delta, 2400.0)));
    run.fleet->add_temporal_object(
        1, "/b", std::make_unique<LimdPolicy>(limd_config(delta, 1200.0)));
    run.group = &run.fleet->add_delta_group({{0, "/a"}, {1, "/b"}}, delta);
    run.fleet->start();
  };

  Run faulty;
  build(faulty, /*crashed=*/true);
  Run control;
  build(control, /*crashed=*/false);

  // Before the crash: no failover anywhere.
  faulty.sim.run_until(crash_at);
  control.sim.run_until(crash_at);
  EXPECT_EQ(faulty.group->failover_triggers(), 0u);

  // Identical sibling logs up to the crash instant.
  const auto& faulty_log = faulty.fleet->proxy(1).poll_log().records();
  const auto& control_log = control.fleet->proxy(1).poll_log().records();
  ASSERT_EQ(faulty_log.size(), control_log.size());
  for (std::size_t i = 0; i < faulty_log.size(); ++i) {
    EXPECT_EQ(faulty_log[i].snapshot_time, control_log[i].snapshot_time);
    EXPECT_EQ(faulty_log[i].cause, control_log[i].cause);
    EXPECT_EQ(faulty_log[i].uri, control_log[i].uri);
  }

  // During the outage the sibling absorbs the owner's responsibility.
  faulty.sim.run_until(recover_at);
  const std::size_t during = faulty.group->failover_triggers();
  EXPECT_GT(during, 0u);

  // After recovery the owner re-homes: the counter freezes and the owner
  // polls again.
  faulty.sim.run_until(horizon);
  EXPECT_EQ(faulty.group->failover_triggers(), during);
  bool owner_resumed = false;
  for (const PollRecord& record :
       faulty.fleet->proxy(0).poll_log().records()) {
    if (record.snapshot_time >= recover_at) owner_resumed = true;
  }
  EXPECT_TRUE(owner_resumed);

  // The control never fails over at all.
  control.sim.run_until(horizon);
  EXPECT_EQ(control.group->failover_triggers(), 0u);
}

}  // namespace
}  // namespace broadway

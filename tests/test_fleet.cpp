// Proxy-fleet tests: cooperative relay faithfulness, origin-load
// accounting, and cross-proxy δ-groups.
#include "fleet/proxy_fleet.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "consistency/limd.h"
#include "harness/experiments.h"
#include "http/extensions.h"
#include "metrics/accounting.h"
#include "metrics/fidelity.h"
#include "trace/generators.h"
#include "util/check.h"
#include "util/rng.h"

namespace broadway {
namespace {

LimdPolicy::Config limd_config(Duration delta, Duration ttr_max) {
  return LimdPolicy::Config::paper_defaults(delta, ttr_max);
}

ProxyFleet::PolicyFactory limd_factory(Duration delta, Duration ttr_max) {
  return [delta, ttr_max] {
    return std::make_unique<LimdPolicy>(limd_config(delta, ttr_max));
  };
}

// The satellite requirement: a sibling proxy whose copy is refreshed by
// relay must report the same ttr_series and fidelity as if it had polled
// the origin itself.  With identical policies the fleet runs in lockstep:
// proxy 0 (started first) polls, every sibling refreshes purely by relay —
// 200s and 304 validations alike — so sibling state must be
// indistinguishable from a standalone engine's.
TEST(ProxyFleet, RelaySiblingMatchesStandaloneEngine) {
  const Duration delta = 60.0;
  const Duration ttr_max = 600.0;
  const Duration horizon = 8000.0;
  const std::vector<TimePoint> updates =
      generate_periodic(/*period=*/180.0, /*phase=*/35.0, horizon);
  const UpdateTrace trace("/news", updates, horizon);

  // Control: one standalone engine.
  Simulator control_sim;
  OriginServer control_origin(control_sim);
  PollingEngine control(control_sim, control_origin);
  control_origin.attach_update_trace("/news", trace);
  control.add_temporal_object(
      "/news", std::make_unique<LimdPolicy>(limd_config(delta, ttr_max)));
  control.start();
  control_sim.run_until(horizon);

  // Fleet: three cooperative proxies, same policy everywhere.
  Simulator sim;
  OriginServer origin(sim);
  FleetConfig config;
  config.proxies = 3;
  config.cooperative_push = true;
  ProxyFleet fleet(sim, origin, config);
  origin.attach_update_trace("/news", trace);
  fleet.add_temporal_object_everywhere("/news",
                                       limd_factory(delta, ttr_max));
  fleet.start();
  sim.run_until(horizon);

  // Proxy 0 polls exactly like the standalone engine; siblings never
  // touch the origin after their initial fetch.
  EXPECT_EQ(fleet.proxy(0).polls_performed("/news"),
            control.polls_performed("/news"));
  for (std::size_t p = 1; p < fleet.size(); ++p) {
    EXPECT_EQ(fleet.proxy(p).polls_performed("/news"), 0u)
        << "sibling " << p << " polled the origin";
    EXPECT_GT(fleet.proxy(p).relay_refreshes("/news"), 0u);

    // Identical TTR trajectory...
    const auto& expected = control.ttr_series("/news");
    const auto& actual = fleet.proxy(p).ttr_series("/news");
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_DOUBLE_EQ(actual[i].first, expected[i].first);
      EXPECT_DOUBLE_EQ(actual[i].second, expected[i].second);
    }

    // ...and identical ground-truth fidelity.
    const auto control_report = evaluate_temporal_fidelity(
        trace, successful_polls(control.poll_log(), "/news"), delta,
        horizon);
    const auto sibling_report = evaluate_temporal_fidelity(
        trace, successful_polls(fleet.proxy(p).poll_log(), "/news"), delta,
        horizon);
    EXPECT_EQ(sibling_report.violations, control_report.violations);
    EXPECT_DOUBLE_EQ(sibling_report.out_sync_time,
                     control_report.out_sync_time);
    EXPECT_DOUBLE_EQ(sibling_report.fidelity_time(),
                     control_report.fidelity_time());
  }

  // The origin served exactly the fleet's initial fetches plus proxy 0's
  // polls: cooperation removed every sibling poll.
  const FleetOriginLoad load = fleet.origin_load();
  EXPECT_EQ(load.origin_messages, origin.requests_served());
  EXPECT_EQ(load.origin_polls, control.polls_performed("/news"));
  EXPECT_EQ(load.relay_refreshes,
            fleet.proxy(1).relay_refreshes() +
                fleet.proxy(2).relay_refreshes());
}

TEST(ProxyFleet, CooperativePushReducesOriginLoadAtEqualFidelity) {
  std::vector<UpdateTrace> traces;
  const Duration horizon = 6000.0;
  for (int i = 0; i < 8; ++i) {
    Rng rng(1000 + i);
    traces.emplace_back("/obj/" + std::to_string(i),
                        generate_poisson(rng, 1.0 / 300.0, horizon),
                        horizon);
  }

  FleetRunConfig config;
  config.proxies = 4;
  config.base.delta = 60.0;
  config.base.ttr_max = 600.0;

  config.cooperative_push = false;
  const FleetRunResult independent = run_fleet_temporal(traces, config);
  config.cooperative_push = true;
  const FleetRunResult cooperative = run_fleet_temporal(traces, config);

  EXPECT_EQ(independent.relays_delivered, 0u);
  EXPECT_GT(cooperative.relays_delivered, 0u);
  EXPECT_LT(cooperative.origin_polls, independent.origin_polls);
  EXPECT_GE(cooperative.mean_fidelity_time,
            independent.mean_fidelity_time - 1e-9);
  // In lockstep the independent fleet just multiplies the single-proxy
  // load; cooperation should bring it back near 1/N.
  EXPECT_LT(cooperative.origin_polls, independent.origin_polls / 2);
}

TEST(ProxyFleet, IndependentModeMatchesScaledSingleProxy) {
  std::vector<UpdateTrace> traces;
  const Duration horizon = 4000.0;
  Rng rng(7);
  traces.emplace_back("/a", generate_poisson(rng, 1.0 / 200.0, horizon),
                      horizon);

  FleetRunConfig config;
  config.proxies = 1;
  config.cooperative_push = false;
  config.base.delta = 60.0;
  config.base.ttr_max = 600.0;
  const FleetRunResult one = run_fleet_temporal(traces, config);

  config.proxies = 3;
  const FleetRunResult three = run_fleet_temporal(traces, config);

  // Identical policies and seeds-independent schedules: each proxy repeats
  // the single-proxy run against the origin.
  EXPECT_EQ(three.origin_polls, 3 * one.origin_polls);
  EXPECT_DOUBLE_EQ(three.mean_fidelity_time, one.mean_fidelity_time);
}

TEST(ProxyFleet, RelayOnlyReachesProxiesTrackingTheUri) {
  Simulator sim;
  OriginServer origin(sim);
  FleetConfig config;
  config.proxies = 2;
  ProxyFleet fleet(sim, origin, config);

  const Duration horizon = 2000.0;
  const UpdateTrace shared("/shared", generate_periodic(150.0, 10.0, horizon),
                           horizon);
  const UpdateTrace solo("/solo", generate_periodic(150.0, 20.0, horizon),
                         horizon);
  origin.attach_update_trace("/shared", shared);
  origin.attach_update_trace("/solo", solo);

  fleet.add_temporal_object_everywhere("/shared", limd_factory(60.0, 600.0));
  // Only proxy 0 tracks /solo: its polls must not produce relay messages.
  fleet.add_temporal_object(0, "/solo",
                            std::make_unique<LimdPolicy>(
                                limd_config(60.0, 600.0)));
  fleet.start();
  sim.run_until(horizon);

  EXPECT_GT(fleet.relays_delivered(), 0u);
  EXPECT_EQ(fleet.proxy(1).relay_refreshes("/solo"), 0u);
  EXPECT_FALSE(fleet.proxy(1).tracks("/solo"));
  // Every relay message concerned /shared.
  EXPECT_EQ(fleet.proxy(1).relay_refreshes(),
            fleet.proxy(1).relay_refreshes("/shared"));
}

TEST(ProxyFleet, ApplyRelayRejectsStaleAndUnvalidatedResponses) {
  Simulator sim;
  OriginServer origin(sim);
  PollingEngine engine(sim, origin);
  origin.add_object("/a");
  engine.add_temporal_object(
      "/a", std::make_unique<LimdPolicy>(limd_config(60.0, 600.0)));

  // Before start: relays are dropped, not applied.
  Response fresh;
  fresh.status = StatusCode::kOk;
  set_last_modified(fresh.headers, 0.0);
  EXPECT_FALSE(engine.apply_relay("/a", fresh, 0.0));

  engine.start();
  sim.run_until(10.0);

  // Untracked uri.
  EXPECT_FALSE(engine.apply_relay("/nope", fresh, 5.0));

  // Relay snapshot not newer than this proxy's own view (initial fetch at
  // t = 0): carries nothing, even though it is a 200.
  EXPECT_FALSE(engine.apply_relay("/a", fresh, 0.0));

  // 200 relay for the version the initial fetch already saw: stale.
  EXPECT_FALSE(engine.apply_relay("/a", fresh, 5.0));
  EXPECT_EQ(engine.relay_refreshes("/a"), 0u);

  // 304 validation naming a version this proxy has NOT seen: must be
  // rejected (the proxy missed an update and cannot treat it as fresh).
  Response unvalidated;
  unvalidated.status = StatusCode::kNotModified;
  set_last_modified(unvalidated.headers, 4.0);
  EXPECT_FALSE(engine.apply_relay("/a", unvalidated, 5.0));

  // Errors never apply.
  Response missing;
  missing.status = StatusCode::kNotFound;
  EXPECT_FALSE(engine.apply_relay("/a", missing, 5.0));
  EXPECT_EQ(engine.relay_refreshes(), 0u);

  // A genuine validation (Last-Modified already seen, newer snapshot)
  // does apply.
  Response valid;
  valid.status = StatusCode::kNotModified;
  set_last_modified(valid.headers, 0.0);
  EXPECT_TRUE(engine.apply_relay("/a", valid, 5.0));
  EXPECT_EQ(engine.relay_refreshes("/a"), 1u);
  // The record carries the true snapshot, not the delivery instant.
  const PollRecord& record =
      engine.poll_log()[engine.poll_log().size() - 1];
  EXPECT_EQ(record.cause, PollCause::kRelay);
  EXPECT_DOUBLE_EQ(record.snapshot_time, 5.0);
  EXPECT_DOUBLE_EQ(record.complete_time, 10.0);
}

TEST(ProxyFleet, RelayRecordsCountedByCauseAndExcludedFromPolls) {
  Simulator sim;
  OriginServer origin(sim);
  FleetConfig config;
  config.proxies = 2;
  ProxyFleet fleet(sim, origin, config);

  const Duration horizon = 3000.0;
  const UpdateTrace trace("/a", generate_periodic(200.0, 15.0, horizon),
                          horizon);
  origin.attach_update_trace("/a", trace);
  fleet.add_temporal_object_everywhere("/a", limd_factory(60.0, 600.0));
  fleet.start();
  sim.run_until(horizon);

  const PollCauseCounts counts =
      count_by_cause(fleet.proxy(1).poll_log());
  EXPECT_GT(counts.relay, 0u);
  EXPECT_EQ(counts.relay, fleet.proxy(1).relay_refreshes());
  // Relays are not origin polls: the paper's metric stays origin-only.
  EXPECT_EQ(fleet.proxy(1).polls_performed(), counts.total_refreshes());
  EXPECT_EQ(fleet.proxy(1).polls_performed(), 0u);
  // But the evaluation's successful-record series sees the refreshes.
  EXPECT_EQ(fleet.proxy(1).poll_completion_times("/a").size(),
            1u + counts.relay);
  // Channel accounting: applied <= delivered, and proxy 1's records match.
  EXPECT_LE(fleet.relays_applied(), fleet.relays_delivered());
  EXPECT_EQ(fleet.relays_applied(),
            fleet.proxy(0).relay_refreshes() +
                fleet.proxy(1).relay_refreshes());
}

TEST(ProxyFleet, DeltaGroupTriggersAcrossProxies) {
  Simulator sim;
  OriginServer origin(sim);
  FleetConfig config;
  config.proxies = 2;
  config.cooperative_push = false;  // isolate the δ-group machinery
  ProxyFleet fleet(sim, origin, config);

  const Duration horizon = 10000.0;
  // /fast updates steadily; /slow never changes, so its LIMD TTR grows and
  // its copy ages far beyond δ between polls.
  const UpdateTrace fast("/fast", generate_periodic(300.0, 40.0, horizon),
                         horizon);
  origin.attach_update_trace("/fast", fast);
  origin.add_object("/slow");

  fleet.add_temporal_object(0, "/fast",
                            std::make_unique<LimdPolicy>(
                                limd_config(120.0, 1200.0)));
  fleet.add_temporal_object(1, "/slow",
                            std::make_unique<LimdPolicy>(
                                limd_config(120.0, 1200.0)));

  const Duration delta_mutual = 60.0;
  FleetDeltaGroup& group = fleet.add_delta_group(
      {{0, "/fast"}, {1, "/slow"}}, delta_mutual);
  // Members are interned at registration: the id-keyed dispatch
  // representation, parallel to the uri member list.
  ASSERT_EQ(group.member_ids().size(), 2u);
  EXPECT_EQ(group.member_ids()[0], origin.uri_table().find("/fast"));
  EXPECT_EQ(group.member_ids()[1], origin.uri_table().find("/slow"));
  fleet.start();
  sim.run_until(horizon);

  // Updates of /fast observed at proxy 0 must have triggered polls of
  // /slow at proxy 1.
  EXPECT_GT(group.triggers_requested(), 0u);
  EXPECT_EQ(fleet.proxy(1).triggered_polls("/slow"),
            group.triggers_requested());
  EXPECT_GT(fleet.proxy(1).triggered_polls("/slow"), 0u);
  // Proxy 0 has no triggered polls: /fast is the group's update source.
  EXPECT_EQ(fleet.proxy(0).triggered_polls(), 0u);

  // Mutual guarantee: after each observed /fast update, /slow's copy at
  // proxy 1 was re-validated within δ.  Check the last /fast poll that
  // observed a modification has a /slow poll within δ after it.
  const auto slow_polls = fleet.proxy(1).poll_completion_times("/slow");
  for (const PollRecord& record : fleet.proxy(0).poll_log()) {
    if (record.failed || !record.modified ||
        record.cause == PollCause::kInitial) {
      continue;
    }
    // A /slow poll "within δ ahead" may lie beyond the simulated horizon.
    if (record.snapshot_time + delta_mutual > horizon) continue;
    bool within = false;
    for (const TimePoint t : slow_polls) {
      if (t >= record.snapshot_time - delta_mutual &&
          t <= record.snapshot_time + delta_mutual) {
        within = true;
        break;
      }
    }
    EXPECT_TRUE(within) << "no /slow poll within delta of "
                        << record.snapshot_time;
  }
}

TEST(ProxyFleet, DeltaGroupValidation) {
  Simulator sim;
  OriginServer origin(sim);
  FleetConfig config;
  config.proxies = 2;
  ProxyFleet fleet(sim, origin, config);
  origin.add_object("/a");
  fleet.add_temporal_object(0, "/a",
                            std::make_unique<LimdPolicy>(
                                limd_config(60.0, 600.0)));

  // Unknown proxy index and untracked member both fail fast.
  EXPECT_THROW(fleet.add_delta_group({{0, "/a"}, {5, "/a"}}, 60.0),
               CheckFailure);
  EXPECT_THROW(fleet.add_delta_group({{0, "/a"}, {1, "/a"}}, 60.0),
               CheckFailure);
  EXPECT_THROW(fleet.add_delta_group({{0, "/a"}, {0, "/a"}}, 60.0),
               CheckFailure);
  // Non-temporal members are rejected at registration, not first trigger.
  origin.add_value_object("/v", 1.0);
  AdaptiveValueTtrPolicy::Config value_config;
  fleet.add_value_object(1, "/v", value_config);
  EXPECT_TRUE(fleet.proxy(1).tracks("/v"));
  EXPECT_THROW(fleet.add_delta_group({{0, "/a"}, {1, "/v"}}, 60.0),
               CheckFailure);
}

TEST(ProxyFleet, FleetValidation) {
  Simulator sim;
  OriginServer origin(sim);
  FleetConfig config;
  config.proxies = 0;
  EXPECT_THROW(ProxyFleet(sim, origin, config), CheckFailure);
  config.proxies = 1;
  config.relay_latency = -1.0;
  EXPECT_THROW(ProxyFleet(sim, origin, config), CheckFailure);
}

TEST(ProxyFleet, RelayLatencyStillConverges) {
  Simulator sim;
  OriginServer origin(sim);
  FleetConfig config;
  config.proxies = 2;
  config.relay_latency = 1.0;
  ProxyFleet fleet(sim, origin, config);

  const Duration horizon = 4000.0;
  const UpdateTrace trace("/a", generate_periodic(250.0, 30.0, horizon),
                          horizon);
  origin.attach_update_trace("/a", trace);
  // Different bounds per proxy break the lockstep, so relays genuinely
  // carry information the receiver has not seen yet (a relay that merely
  // repeats the receiver's own simultaneous observation is rejected).
  fleet.add_temporal_object(0, "/a",
                            std::make_unique<LimdPolicy>(
                                limd_config(60.0, 600.0)));
  fleet.add_temporal_object(1, "/a",
                            std::make_unique<LimdPolicy>(
                                limd_config(90.0, 900.0)));
  fleet.start();
  sim.run_until(horizon);

  // With a delivery delay the receiver still polls on its own at times,
  // but relays must carry refreshes, and every relayed record must be
  // stamped with a snapshot one latency older than its visibility.
  EXPECT_GT(fleet.proxy(1).relay_refreshes("/a"), 0u);
  for (const PollRecord& record : fleet.proxy(1).poll_log()) {
    if (record.cause != PollCause::kRelay) continue;
    EXPECT_DOUBLE_EQ(record.complete_time,
                     record.snapshot_time + config.relay_latency);
  }
  const auto report = evaluate_temporal_fidelity(
      trace, successful_polls(fleet.proxy(1).poll_log(), "/a"), 90.0,
      horizon);
  EXPECT_GT(report.fidelity_time(), 0.5);
}

// The relay-latency edge in the counters: a sweep (or a sharded barrier)
// that stops while messages are on the wire must see exact accounting —
// sent == delivered + in_flight at every horizon, in-flight relays
// drained (never silently dropped) when the run extends, and
// FleetOriginLoad identical to a run that never paused.
TEST(ProxyFleet, InFlightRelaysAreCountedAndDrainedExactly) {
  const Duration horizon = 4000.0;
  const UpdateTrace trace("/a", generate_periodic(250.0, 30.0, horizon),
                          horizon);

  auto build = [&](Simulator& sim, OriginServer& origin) {
    FleetConfig config;
    config.proxies = 3;
    config.relay_latency = 5.0;  // long enough to catch messages mid-air
    auto fleet = std::make_unique<ProxyFleet>(sim, origin, config);
    origin.attach_update_trace("/a", trace);
    for (std::size_t p = 0; p < 3; ++p) {
      fleet->add_temporal_object(p, "/a",
                                 std::make_unique<LimdPolicy>(limd_config(
                                     60.0 + 15.0 * p, 600.0 + 100.0 * p)));
    }
    fleet->start();
    return fleet;
  };

  // Paused run: stop at every relay-sized step and require the counter
  // identity to hold at each horizon.
  Simulator sim;
  OriginServer origin(sim);
  auto fleet = build(sim, origin);
  bool saw_in_flight = false;
  for (TimePoint h = 97.0; h < horizon; h += 97.0) {  // never a multiple
    sim.run_until(h);
    EXPECT_EQ(fleet->relays_sent(),
              fleet->relays_delivered() + fleet->relays_in_flight());
    saw_in_flight = saw_in_flight || fleet->relays_in_flight() > 0;
  }
  sim.run_until(horizon + 10.0);  // past the last send + latency
  EXPECT_TRUE(saw_in_flight);
  EXPECT_EQ(fleet->relays_in_flight(), 0u);
  EXPECT_EQ(fleet->relays_sent(), fleet->relays_delivered());
  EXPECT_GT(fleet->relays_delivered(), 0u);

  // Ground truth: the same fleet run straight through.
  Simulator control_sim;
  OriginServer control_origin(control_sim);
  auto control = build(control_sim, control_origin);
  control_sim.run_until(horizon + 10.0);
  EXPECT_EQ(control->relays_sent(), fleet->relays_sent());
  EXPECT_EQ(control->relays_delivered(), fleet->relays_delivered());
  EXPECT_EQ(control->relays_applied(), fleet->relays_applied());
  const FleetOriginLoad control_load = control->origin_load();
  const FleetOriginLoad paused_load = fleet->origin_load();
  EXPECT_EQ(control_load.origin_messages, paused_load.origin_messages);
  EXPECT_EQ(control_load.origin_polls, paused_load.origin_polls);
  EXPECT_EQ(control_load.relay_refreshes, paused_load.relay_refreshes);
  EXPECT_EQ(control_load.failed, paused_load.failed);
}

// FleetConfig::poll_log_retention forwards to every engine's
// set_poll_log_retention.  Truncation must shorten the per-object record
// series without perturbing a single fleet counter: an identical run with
// unlimited logs is the ground truth.
TEST(ProxyFleet, PollLogRetentionKeepsFleetCountersExact) {
  const Duration horizon = 12000.0;
  std::vector<UpdateTrace> traces;
  for (int i = 0; i < 3; ++i) {
    traces.emplace_back("/object/" + std::to_string(i),
                        generate_periodic(120.0 + 40.0 * i, 15.0, horizon),
                        horizon);
  }

  const auto run = [&](std::size_t retention) {
    auto sim = std::make_unique<Simulator>();
    auto origin = std::make_unique<OriginServer>(*sim);
    FleetConfig config;
    config.proxies = 3;
    config.cooperative_push = true;
    config.engine.loss_probability = 0.05;
    config.engine.retry_delay = 2.0;
    config.poll_log_retention = retention;
    auto fleet = std::make_unique<ProxyFleet>(*sim, *origin, config);
    for (const UpdateTrace& trace : traces) {
      origin->attach_update_trace(trace.name(), trace);
      fleet->add_temporal_object_everywhere(trace.name(),
                                            limd_factory(60.0, 600.0));
    }
    fleet->start();
    sim->run_until(horizon);
    struct Result {
      std::unique_ptr<Simulator> sim;
      std::unique_ptr<OriginServer> origin;
      std::unique_ptr<ProxyFleet> fleet;
    };
    return Result{std::move(sim), std::move(origin), std::move(fleet)};
  };

  const auto unlimited = run(0);
  const auto truncated = run(4);

  // Counters: exact, fleet-wide and per object, per proxy.
  EXPECT_EQ(truncated.fleet->origin_polls(), unlimited.fleet->origin_polls());
  EXPECT_EQ(truncated.fleet->relays_delivered(),
            unlimited.fleet->relays_delivered());
  EXPECT_EQ(truncated.fleet->relays_applied(),
            unlimited.fleet->relays_applied());
  const FleetOriginLoad unlimited_load = unlimited.fleet->origin_load();
  const FleetOriginLoad truncated_load = truncated.fleet->origin_load();
  EXPECT_EQ(truncated_load.origin_messages, unlimited_load.origin_messages);
  EXPECT_EQ(truncated_load.origin_polls, unlimited_load.origin_polls);
  for (std::size_t p = 0; p < truncated.fleet->size(); ++p) {
    const PollingEngine& engine = truncated.fleet->proxy(p);
    const PollingEngine& reference = unlimited.fleet->proxy(p);
    EXPECT_EQ(engine.poll_log().retention_window(), 4u);
    EXPECT_EQ(engine.failed_polls(), reference.failed_polls());
    for (const UpdateTrace& trace : traces) {
      SCOPED_TRACE("proxy " + std::to_string(p) + " " + trace.name());
      EXPECT_EQ(engine.polls_performed(trace.name()),
                reference.polls_performed(trace.name()));
      EXPECT_EQ(engine.relay_refreshes(trace.name()),
                reference.relay_refreshes(trace.name()));
      // The record series genuinely truncated (eviction is amortized, so
      // the instantaneous length may sit a little above the window)...
      const auto series = engine.poll_snapshot_times(trace.name());
      const auto full = reference.poll_snapshot_times(trace.name());
      ASSERT_LT(series.size(), full.size());
      // ...and what remains is the newest suffix of the reference series.
      EXPECT_TRUE(std::equal(series.begin(), series.end(),
                             full.end() - static_cast<std::ptrdiff_t>(
                                              series.size())));
    }
    EXPECT_LT(engine.poll_log().size(), reference.poll_log().size());
  }
}

}  // namespace
}  // namespace broadway

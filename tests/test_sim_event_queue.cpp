// The calendar queue and its differential pin against the binary heap.
//
// A scheduler swap is exactly the kind of change that silently reorders
// same-instant events, so the calendar backend is held to *observable
// identity* with the heap: the same seeded mix of schedule / cancel /
// reschedule / current_event operations must produce byte-identical fire
// sequences — including bursts of events at one instant, where only the
// FIFO sequence number separates them.  Targeted pins cover the calendar
// mechanics the random mix cannot see directly: tombstone purging, bucket
// resizing mid-run, the sparse-regime cursor jump, and EventId generation
// reuse under the calendar backend.
#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "sim/simulator.h"
#include "util/check.h"
#include "util/rng.h"

namespace broadway {
namespace {

Simulator::Config backend_config(SchedulerBackend backend) {
  Simulator::Config config;
  config.scheduler = backend;
  return config;
}

// ---- CalendarQueue unit pins -----------------------------------------------

TEST(CalendarQueue, PopsInTimeThenFifoOrder) {
  CalendarQueue queue;
  // Scrambled times, including a same-instant burst at t = 7 whose seq
  // numbers are deliberately pushed out of order.
  const std::vector<EventEntry> entries = {
      {7.0, 12, 101}, {3.0, 2, 102},  {7.0, 10, 103}, {1.0, 1, 104},
      {7.0, 11, 105}, {9.0, 20, 106}, {3.0, 5, 107},
  };
  for (const EventEntry& entry : entries) queue.push(entry);
  std::vector<EventEntry> popped;
  while (queue.peek() != nullptr) popped.push_back(queue.pop());
  ASSERT_EQ(popped.size(), entries.size());
  for (std::size_t i = 1; i < popped.size(); ++i) {
    EXPECT_TRUE(fires_before(popped[i - 1], popped[i]))
        << "out of order at " << i;
  }
  EXPECT_EQ(popped.front().id, 104u);
  // The t = 7 burst must come out in seq order 10, 11, 12.
  EXPECT_EQ(popped[3].id, 103u);
  EXPECT_EQ(popped[4].id, 105u);
  EXPECT_EQ(popped[5].id, 101u);
}

TEST(CalendarQueue, GrowsAndShrinksWithLoad) {
  CalendarQueue queue;
  const std::size_t initial_buckets = queue.bucket_count();
  for (std::uint64_t i = 0; i < 1000; ++i) {
    queue.push(EventEntry{static_cast<double>((i * 7919) % 1000), i, i + 1});
  }
  EXPECT_GT(queue.resizes(), 0u);
  EXPECT_GT(queue.bucket_count(), initial_buckets);
  // The derived width should reflect the ~1 s mean inter-event interval,
  // not the 1.0 default by accident of never resizing.
  EXPECT_GT(queue.bucket_width(), 0.0);
  double last = -1.0;
  std::size_t drained = 0;
  while (queue.peek() != nullptr) {
    const EventEntry entry = queue.pop();
    EXPECT_GE(entry.time, last);
    last = entry.time;
    ++drained;
  }
  EXPECT_EQ(drained, 1000u);
  // Shrinks back toward the floor as the load drains.
  EXPECT_LE(queue.bucket_count(), 2 * initial_buckets);
}

TEST(CalendarQueue, ResizeMidRunPreservesOrder) {
  CalendarQueue queue;
  std::uint64_t seq = 0;
  std::vector<double> expected;
  // Interleave pushes and pops so rebuilds happen while a partially
  // drained year is in flight.
  double last = -1.0;
  std::vector<double> popped;
  for (int round = 0; round < 40; ++round) {
    for (int i = 0; i < 25; ++i) {
      const double t = 100.0 * round + (i * 37) % 100;
      if (t < last) continue;  // keep the monotonic-schedule contract
      queue.push(EventEntry{t, seq, seq + 1});
      ++seq;
      expected.push_back(t);
    }
    for (int i = 0; i < 10 && queue.peek() != nullptr; ++i) {
      const EventEntry entry = queue.pop();
      EXPECT_GE(entry.time, last);
      last = entry.time;
      popped.push_back(entry.time);
    }
  }
  while (queue.peek() != nullptr) popped.push_back(queue.pop().time);
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(popped, expected);
  EXPECT_GT(queue.resizes(), 1u);
}

TEST(CalendarQueue, ArenaRecyclesChunksAcrossDrainRefill) {
  // Bucket storage is a per-queue slab with a free list: draining the
  // queue returns every chunk to the free list, and an equal refill reuses
  // them instead of allocating new ones — the slab never grows past the
  // workload's high-water mark.
  CalendarQueue queue;
  std::uint64_t seq = 0;
  const auto fill = [&queue, &seq](double base) {
    for (int i = 0; i < 500; ++i) {
      queue.push(EventEntry{base + static_cast<double>((i * 131) % 500),
                            seq, seq + 1});
      ++seq;
    }
  };
  fill(0.0);
  const std::size_t high_water = queue.arena_chunks();
  EXPECT_GT(high_water, 0u);
  while (queue.peek() != nullptr) queue.pop();
  EXPECT_TRUE(queue.empty());
  // Refill at the same load (later times keep the monotonic-schedule
  // contract): recycled chunks, no slab growth beyond the first cycle's
  // high-water mark (small slack: bucket-boundary rounding of the shifted
  // times can chain one or two extra chunks).
  fill(1000.0);
  EXPECT_LE(queue.arena_chunks(), high_water + 4);
  std::size_t drained = 0;
  double last = -1.0;
  while (queue.peek() != nullptr) {
    const EventEntry entry = queue.pop();
    EXPECT_GE(entry.time, last);
    last = entry.time;
    ++drained;
  }
  EXPECT_EQ(drained, 500u);
}

struct TombstoneSet {
  std::set<EventId> dead;
  static bool live(const void* context, EventId id) {
    const auto* self = static_cast<const TombstoneSet*>(context);
    return self->dead.find(id) == self->dead.end();
  }
};

TEST(CalendarQueue, PurgesTombstonesOnTheWay) {
  TombstoneSet tombstones;
  CalendarQueue queue(&TombstoneSet::live, &tombstones);
  for (std::uint64_t i = 0; i < 100; ++i) {
    queue.push(EventEntry{static_cast<double>(i), i, i + 1});
  }
  // Kill the current head and a band in the middle.
  tombstones.dead.insert(1);
  for (EventId id = 40; id < 60; ++id) tombstones.dead.insert(id);
  std::vector<EventId> popped;
  while (queue.peek() != nullptr) popped.push_back(queue.pop().id);
  EXPECT_EQ(popped.size(), 79u);
  for (const EventId id : popped) {
    EXPECT_EQ(tombstones.dead.count(id), 0u);
  }
  EXPECT_EQ(popped.front(), 2u);  // the dead head was skipped
  EXPECT_EQ(queue.size(), 0u);    // purged, not merely skipped
}

TEST(CalendarQueue, CancelledCachedMinimumIsDropped) {
  TombstoneSet tombstones;
  CalendarQueue queue(&TombstoneSet::live, &tombstones);
  queue.push(EventEntry{1.0, 0, 1});
  queue.push(EventEntry{2.0, 1, 2});
  ASSERT_NE(queue.peek(), nullptr);
  EXPECT_EQ(queue.peek()->id, 1u);
  // Cancel after the peek located (and cached) the minimum.
  tombstones.dead.insert(1);
  ASSERT_NE(queue.peek(), nullptr);
  EXPECT_EQ(queue.peek()->id, 2u);
  EXPECT_EQ(queue.pop().id, 2u);
  EXPECT_EQ(queue.peek(), nullptr);
}

TEST(CalendarQueue, SparseEventsFarApartStillOrdered) {
  CalendarQueue queue;
  // Events many calendar years apart force the direct-search jump.
  queue.push(EventEntry{10.0, 0, 1});
  queue.push(EventEntry{1.0e6, 1, 2});
  queue.push(EventEntry{5.0e8, 2, 3});
  ASSERT_NE(queue.peek(), nullptr);
  EXPECT_EQ(queue.pop().id, 1u);
  EXPECT_EQ(queue.pop().id, 2u);
  // A push behind the jumped cursor must rewind it.
  queue.push(EventEntry{1.5e6, 3, 4});
  EXPECT_EQ(queue.pop().id, 4u);
  EXPECT_EQ(queue.pop().id, 3u);
  EXPECT_EQ(queue.peek(), nullptr);
}

TEST(CalendarQueue, SameInstantBurstStaysFifoAcrossResizes) {
  CalendarQueue queue;
  for (std::uint64_t i = 0; i < 500; ++i) {
    queue.push(EventEntry{42.0, i, i + 1});
  }
  for (std::uint64_t i = 0; i < 500; ++i) {
    ASSERT_NE(queue.peek(), nullptr);
    EXPECT_EQ(queue.pop().seq, i);
  }
}

// ---- randomized differential crosscheck ------------------------------------

// One recorded firing: (time, op tag).  EventIds are backend-internal, so
// identity is asserted over what an observer of the simulation can see.
using FireLog = std::vector<std::pair<TimePoint, int>>;

// Drive one simulator through a seeded op mix and return its fire log.
// The script derives every decision from its own Rng so both backends see
// exactly the same operations; `pending` maps script-level handles to the
// backend's EventIds.
FireLog run_script(SchedulerBackend backend, std::uint64_t seed) {
  Simulator sim(backend_config(backend));
  FireLog log;
  Rng rng(seed);
  std::vector<EventId> pending;
  int tag = 0;

  const auto schedule = [&](TimePoint t, int my_tag) {
    const EventId id = sim.schedule_at(t, [&sim, &log, my_tag] {
      // current_event() must identify the running callback on both
      // backends (the engine's retry path depends on it).
      BROADWAY_CHECK(sim.current_event() != kInvalidEventId);
      log.emplace_back(sim.now(), my_tag);
    });
    pending.push_back(id);
  };

  for (int phase = 0; phase < 30; ++phase) {
    const int ops = static_cast<int>(rng.uniform_int(5, 40));
    for (int op = 0; op < ops; ++op) {
      const double dice = rng.uniform01();
      if (dice < 0.55 || pending.empty()) {
        // Quantised delays manufacture plenty of same-instant ties,
        // including zero-delay events at the current instant.
        const double delay = rng.uniform_int(0, 40) * 0.25;
        schedule(sim.now() + delay, tag++);
      } else if (dice < 0.75) {
        const std::size_t victim = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(pending.size()) - 1));
        sim.cancel(pending[victim]);
        pending.erase(pending.begin() +
                      static_cast<std::ptrdiff_t>(victim));
      } else if (dice < 0.9) {
        // Reschedule: cancel + schedule at a fresh instant, like
        // PeriodicTask::reschedule does.
        const std::size_t victim = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(pending.size()) - 1));
        sim.cancel(pending[victim]);
        pending.erase(pending.begin() +
                      static_cast<std::ptrdiff_t>(victim));
        const double delay = rng.uniform_int(0, 40) * 0.25;
        schedule(sim.now() + delay, tag++);
      } else {
        // Burst: several events at one shared instant.
        const double t = sim.now() + rng.uniform_int(0, 20) * 0.5;
        const int burst = static_cast<int>(rng.uniform_int(2, 6));
        for (int i = 0; i < burst; ++i) schedule(t, tag++);
      }
    }
    // Advance: sometimes a bounded number of steps, sometimes to a
    // horizon (which exercises peek-without-pop at the boundary).
    if (rng.bernoulli(0.5)) {
      sim.run(static_cast<std::size_t>(rng.uniform_int(1, 30)));
    } else {
      sim.run_until(sim.now() + rng.uniform_int(0, 12) * 1.0);
    }
    pending.erase(std::remove_if(pending.begin(), pending.end(),
                                 [&sim](EventId id) {
                                   return !sim.is_pending(id);
                                 }),
                  pending.end());
  }
  sim.run();
  return log;
}

TEST(SchedulerDifferential, RandomOpMixFiresIdentically) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const FireLog heap = run_script(SchedulerBackend::kBinaryHeap, seed);
    const FireLog calendar = run_script(SchedulerBackend::kCalendar, seed);
    ASSERT_FALSE(heap.empty());
    EXPECT_EQ(heap, calendar) << "fire sequences diverged for seed " << seed;
  }
}

TEST(SchedulerDifferential, CountersAgree) {
  for (std::uint64_t seed = 11; seed <= 13; ++seed) {
    Simulator heap(backend_config(SchedulerBackend::kBinaryHeap));
    Simulator calendar(backend_config(SchedulerBackend::kCalendar));
    for (Simulator* sim : {&heap, &calendar}) {
      Rng rng(seed);
      for (int i = 0; i < 500; ++i) {
        const EventId id =
            sim->schedule_at(rng.uniform_int(0, 200) * 0.5, [] {});
        if (rng.bernoulli(0.3)) sim->cancel(id);
      }
      sim->run_until(60.0);
    }
    EXPECT_EQ(heap.pending(), calendar.pending());
    EXPECT_EQ(heap.executed(), calendar.executed());
    EXPECT_DOUBLE_EQ(heap.now(), calendar.now());
  }
}

// ---- Simulator-level calendar pins -----------------------------------------

TEST(CalendarSimulator, EventIdsAreNeverRevivedBySlotReuse) {
  // The calendar-backend twin of the simulator's generation-reuse pin.
  Simulator sim(backend_config(SchedulerBackend::kCalendar));
  const EventId first = sim.schedule_at(1.0, [] {});
  sim.run();
  EXPECT_FALSE(sim.is_pending(first));
  std::vector<EventId> later;
  for (int i = 0; i < 64; ++i) {
    later.push_back(sim.schedule_at(10.0 + i, [] {}));
  }
  EXPECT_FALSE(sim.is_pending(first));
  EXPECT_FALSE(sim.cancel(first));
  EXPECT_EQ(sim.fire_time(first), kTimeInfinity);
  for (const EventId id : later) EXPECT_TRUE(sim.is_pending(id));
  sim.run();
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(CalendarSimulator, BackendSelectionIsReported) {
  Simulator heap(backend_config(SchedulerBackend::kBinaryHeap));
  Simulator calendar(backend_config(SchedulerBackend::kCalendar));
  EXPECT_EQ(heap.scheduler(), SchedulerBackend::kBinaryHeap);
  EXPECT_EQ(calendar.scheduler(), SchedulerBackend::kCalendar);
}

TEST(ReservedSequences, TieBreakAsIfScheduledAtReservationTime) {
  for (const SchedulerBackend backend :
       {SchedulerBackend::kBinaryHeap, SchedulerBackend::kCalendar}) {
    Simulator sim(backend_config(backend));
    std::vector<int> order;
    // Reserve three numbers *before* the competing event is scheduled...
    const std::uint64_t base = sim.reserve_sequence(3);
    sim.schedule_at(5.0, [&] { order.push_back(99); });
    // ...then spend them afterwards, even out of reservation order.
    sim.schedule_at_reserved(5.0, base + 2, [&] { order.push_back(2); });
    sim.schedule_at_reserved(5.0, base + 0, [&] { order.push_back(0); });
    sim.schedule_at_reserved(5.0, base + 1, [&] { order.push_back(1); });
    sim.run();
    // All three reserved events outrank the later-sequenced competitor.
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 99}));
  }
}

TEST(ReservedSequences, UnreservedSequenceIsRejected) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_at_reserved(1.0, 17, [] {}), CheckFailure);
}

}  // namespace
}  // namespace broadway

#include "sim/periodic.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"
#include "util/check.h"

namespace broadway {
namespace {

TEST(PeriodicTask, FixedPeriodFiresRepeatedly) {
  Simulator sim;
  std::vector<double> fires;
  PeriodicTask task(sim, [&] {
    fires.push_back(sim.now());
    return 10.0;
  });
  task.start(10.0);
  sim.run_until(45.0);
  EXPECT_EQ(fires, (std::vector<double>{10.0, 20.0, 30.0, 40.0}));
}

TEST(PeriodicTask, VariablePeriodFollowsBodyReturn) {
  Simulator sim;
  std::vector<double> fires;
  double next = 1.0;
  PeriodicTask task(sim, [&] {
    fires.push_back(sim.now());
    next *= 2.0;  // 2, 4, 8 ... like LIMD growth
    return next;
  });
  task.start(1.0);
  sim.run_until(16.0);
  EXPECT_EQ(fires, (std::vector<double>{1.0, 3.0, 7.0, 15.0}));
}

TEST(PeriodicTask, NegativeReturnStops) {
  Simulator sim;
  int count = 0;
  PeriodicTask task(sim, [&] {
    ++count;
    return count < 3 ? 1.0 : -1.0;
  });
  task.start(1.0);
  sim.run();
  EXPECT_EQ(count, 3);
  EXPECT_FALSE(task.active());
}

TEST(PeriodicTask, StopCancelsPendingFire) {
  Simulator sim;
  int count = 0;
  PeriodicTask task(sim, [&] {
    ++count;
    return 5.0;
  });
  task.start(5.0);
  sim.run_until(6.0);
  EXPECT_EQ(count, 1);
  task.stop();
  sim.run_until(100.0);
  EXPECT_EQ(count, 1);
}

TEST(PeriodicTask, RescheduleReplacesPendingFire) {
  Simulator sim;
  std::vector<double> fires;
  PeriodicTask task(sim, [&] {
    fires.push_back(sim.now());
    return 100.0;
  });
  task.start(50.0);
  // Pull the poll forward, as a triggered poll does.
  sim.schedule_at(10.0, [&] { task.reschedule(0.0); });
  sim.run_until(20.0);
  EXPECT_EQ(fires, (std::vector<double>{10.0}));
  EXPECT_TRUE(task.active());
  EXPECT_DOUBLE_EQ(task.next_fire_time(), 110.0);
}

TEST(PeriodicTask, RescheduleInsideBodyWins) {
  Simulator sim;
  std::vector<double> fires;
  PeriodicTask* handle = nullptr;
  PeriodicTask task(sim, [&] {
    fires.push_back(sim.now());
    if (fires.size() == 1) {
      handle->reschedule(2.0);  // explicit reschedule overrides the return
      return 50.0;
    }
    return -1.0;
  });
  handle = &task;
  task.start(1.0);
  sim.run();
  EXPECT_EQ(fires, (std::vector<double>{1.0, 3.0}));
}

TEST(PeriodicTask, NextFireTimeInfinityWhenInactive) {
  Simulator sim;
  PeriodicTask task(sim, [] { return -1.0; });
  EXPECT_FALSE(task.active());
  EXPECT_EQ(task.next_fire_time(), kTimeInfinity);
}

TEST(PeriodicTask, DoubleStartThrows) {
  Simulator sim;
  PeriodicTask task(sim, [] { return 1.0; });
  task.start(1.0);
  EXPECT_THROW(task.start(1.0), CheckFailure);
}

TEST(PeriodicTask, DestructorCancelsCleanly) {
  Simulator sim;
  int count = 0;
  {
    PeriodicTask task(sim, [&] {
      ++count;
      return 1.0;
    });
    task.start(1.0);
    sim.run_until(2.5);
    EXPECT_EQ(count, 2);
  }
  sim.run_until(10.0);  // must not crash dereferencing a dead task
  EXPECT_EQ(count, 2);
}

}  // namespace
}  // namespace broadway

#include "consistency/types.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace broadway {
namespace {

TEST(TtrBounds, ClampWithinRange) {
  const TtrBounds bounds{10.0, 100.0};
  EXPECT_DOUBLE_EQ(bounds.clamp(50.0), 50.0);
  EXPECT_DOUBLE_EQ(bounds.clamp(5.0), 10.0);
  EXPECT_DOUBLE_EQ(bounds.clamp(500.0), 100.0);
  EXPECT_DOUBLE_EQ(bounds.clamp(10.0), 10.0);
  EXPECT_DOUBLE_EQ(bounds.clamp(100.0), 100.0);
}

TEST(TtrBounds, InvalidBoundsThrowOnUse) {
  const TtrBounds inverted{100.0, 10.0};
  EXPECT_THROW(inverted.clamp(50.0), CheckFailure);
  const TtrBounds zero{0.0, 10.0};
  EXPECT_THROW(zero.clamp(5.0), CheckFailure);
}

TEST(TtrBounds, FromDeltaSetsMinToDelta) {
  const TtrBounds bounds = TtrBounds::from_delta(600.0, 3600.0);
  EXPECT_DOUBLE_EQ(bounds.min, 600.0);
  EXPECT_DOUBLE_EQ(bounds.max, 3600.0);
}

TEST(TtrBounds, FromDeltaNeverInverts) {
  // Δ larger than the requested cap: the cap rises to Δ (the paper's
  // TTR_min = Δ rule dominates).
  const TtrBounds bounds = TtrBounds::from_delta(7200.0, 3600.0);
  EXPECT_DOUBLE_EQ(bounds.min, 7200.0);
  EXPECT_DOUBLE_EQ(bounds.max, 7200.0);
  EXPECT_THROW(TtrBounds::from_delta(0.0, 100.0), CheckFailure);
}

TEST(EnumToString, AllNamed) {
  EXPECT_EQ(to_string(LimdCase::kNoChange), "no-change");
  EXPECT_EQ(to_string(LimdCase::kViolation), "violation");
  EXPECT_EQ(to_string(LimdCase::kChangeNoViolation), "change-no-violation");
  EXPECT_EQ(to_string(LimdCase::kIdleReset), "idle-reset");
  EXPECT_EQ(to_string(ViolationDetection::kExactHistory), "exact-history");
  EXPECT_EQ(to_string(ViolationDetection::kLastModifiedOnly),
            "last-modified-only");
  EXPECT_EQ(to_string(ViolationDetection::kProbabilistic), "probabilistic");
  EXPECT_EQ(to_string(PollCause::kInitial), "initial");
  EXPECT_EQ(to_string(PollCause::kScheduled), "scheduled");
  EXPECT_EQ(to_string(PollCause::kTriggered), "triggered");
  EXPECT_EQ(to_string(PollCause::kRetry), "retry");
}

}  // namespace
}  // namespace broadway

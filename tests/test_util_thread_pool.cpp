#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace broadway {
namespace {

TEST(ThreadPool, InlineModeRunsInOrderOnCallingThread) {
  for (const std::size_t threads : {std::size_t{0}, std::size_t{1}}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), 0u);
    EXPECT_EQ(pool.parallelism(), 1u);
    std::vector<std::size_t> order;
    const std::thread::id caller = std::this_thread::get_id();
    bool off_thread = false;
    pool.run_batch(8, [&](std::size_t index) {
      order.push_back(index);
      if (std::this_thread::get_id() != caller) off_thread = true;
    });
    EXPECT_FALSE(off_thread);
    std::vector<std::size_t> expected(8);
    std::iota(expected.begin(), expected.end(), 0u);
    EXPECT_EQ(order, expected);
  }
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  constexpr std::size_t kTasks = 200;
  std::vector<std::atomic<int>> hits(kTasks);
  pool.run_batch(kTasks, [&](std::size_t index) { ++hits[index]; });
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ReturnIsABarrier) {
  ThreadPool pool(3);
  std::atomic<int> completed{0};
  for (int batch = 0; batch < 20; ++batch) {
    pool.run_batch(7, [&](std::size_t) { ++completed; });
    // Every task of every batch so far has finished by the time
    // run_batch returns — no stragglers bleed into later batches.
    EXPECT_EQ(completed.load(), (batch + 1) * 7);
  }
}

TEST(ThreadPool, PropagatesFirstExceptionAndStaysUsable) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.run_batch(10,
                     [&](std::size_t index) {
                       ++ran;
                       if (index == 3) throw std::runtime_error("boom");
                     }),
      std::runtime_error);
  EXPECT_EQ(ran.load(), 10);  // the batch still drained fully
  std::atomic<int> after{0};
  pool.run_batch(5, [&](std::size_t) { ++after; });
  EXPECT_EQ(after.load(), 5);
}

TEST(ThreadPool, ConcurrentThrowsSurfaceTheLowestIndex) {
  ThreadPool pool(2);
  for (int round = 0; round < 25; ++round) {
    std::atomic<int> arrived{0};
    std::atomic<int> ran{0};
    try {
      pool.run_batch(2, [&](std::size_t index) {
        ++ran;
        // Both tasks rendezvous before throwing so the two exceptions are
        // genuinely concurrent: whichever worker records its failure
        // second must still lose to the lower batch index.
        ++arrived;
        while (arrived.load() < 2) std::this_thread::yield();
        throw std::runtime_error(index == 0 ? "low" : "high");
      });
      FAIL() << "no exception surfaced";
    } catch (const std::runtime_error& error) {
      EXPECT_STREQ(error.what(), "low");
    }
    EXPECT_EQ(ran.load(), 2);  // both indices still drained
  }
}

TEST(ThreadPool, WeightedBatchRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 200;
  std::vector<double> costs(kTasks);
  for (std::size_t i = 0; i < kTasks; ++i) {
    costs[i] = static_cast<double>(i % 7);  // skewed, with ties
  }
  std::vector<std::atomic<int>> hits(kTasks);
  pool.run_batch(
      kTasks, [&](std::size_t index) { ++hits[index]; }, costs);
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, WeightedInlineModeIgnoresHintsAndRunsInOrder) {
  ThreadPool pool(0);
  std::vector<std::size_t> order;
  const std::vector<double> costs = {3.0, 1.0, 4.0, 2.0};
  pool.run_batch(
      4, [&](std::size_t index) { order.push_back(index); }, costs);
  const std::vector<std::size_t> expected = {0, 1, 2, 3};
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, WeightedBatchPropagatesLowestIndexException) {
  ThreadPool pool(2);
  const std::vector<double> costs = {1.0, 5.0, 2.0, 4.0, 3.0};
  std::atomic<int> ran{0};
  try {
    pool.run_batch(
        5,
        [&](std::size_t index) {
          ++ran;
          if (index == 1 || index == 3) {
            throw std::runtime_error(index == 1 ? "one" : "three");
          }
        },
        costs);
    FAIL() << "no exception surfaced";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "one");
  }
  EXPECT_EQ(ran.load(), 5);
  std::atomic<int> after{0};
  pool.run_batch(
      3, [&](std::size_t) { ++after; }, {1.0, 1.0, 1.0});
  EXPECT_EQ(after.load(), 3);
}

TEST(ThreadPool, ZeroCountBatchIsANoOp) {
  ThreadPool pool(2);
  pool.run_batch(0, [](std::size_t) { FAIL() << "task ran"; });
}

TEST(ThreadPool, MoreTasksThanWorkers) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  constexpr std::size_t kTasks = 1000;
  pool.run_batch(kTasks,
                 [&](std::size_t index) { sum += static_cast<long>(index); });
  EXPECT_EQ(sum.load(), static_cast<long>(kTasks * (kTasks - 1) / 2));
}

}  // namespace
}  // namespace broadway

// Direct engine coverage of the value-domain bindings: partitioned
// groups, virtual groups under loss/RTT, and mixed registrations.
#include <gtest/gtest.h>

#include <memory>

#include "consistency/fixed_poll.h"
#include "consistency/partitioned.h"
#include "consistency/virtual_object.h"
#include "origin/origin_server.h"
#include "proxy/polling_engine.h"
#include "sim/simulator.h"
#include "trace/value_trace.h"
#include "util/check.h"

namespace broadway {
namespace {

ValueTrace ramp_trace(const std::string& name, double start, double slope,
                      Duration duration, Duration step) {
  std::vector<ValueTrace::Step> steps;
  for (TimePoint t = step; t < duration; t += step) {
    steps.push_back(ValueTrace::Step{t, start + slope * t});
  }
  return ValueTrace(name, start, std::move(steps), duration);
}

TEST(ValueEngine, PartitionedGroupPollsBothIndependently) {
  Simulator sim;
  OriginServer origin(sim);
  PollingEngine engine(sim, origin);
  // Fast ramp vs flat object.
  const ValueTrace fast = ramp_trace("/fast", 100.0, 0.01, 600.0, 5.0);
  const ValueTrace slow("/slow", 50.0, {}, 600.0);
  origin.attach_value_trace(fast.name(), fast);
  origin.attach_value_trace(slow.name(), slow);

  PartitionedTolerancePolicy::Config config;
  config.delta = 1.0;
  config.bounds = {2.0, 120.0};
  engine.add_partitioned_group(
      {fast.name(), slow.name()},
      std::make_unique<PartitionedTolerancePolicy>(
          std::make_unique<DifferenceFunction>(), config));
  engine.start();
  sim.run_until(600.0);

  // The moving object must be polled more often than the flat one, and
  // their schedules are independent (different counts).
  EXPECT_GT(engine.polls_performed(fast.name()),
            engine.polls_performed(slow.name()));
  EXPECT_GT(engine.polls_performed(slow.name()), 0u);
}

TEST(ValueEngine, PartitionedGroupArityMismatchRejected) {
  Simulator sim;
  OriginServer origin(sim);
  PollingEngine engine(sim, origin);
  PartitionedTolerancePolicy::Config config;
  config.delta = 1.0;
  EXPECT_THROW(
      engine.add_partitioned_group(
          {"/only-one"},
          std::make_unique<PartitionedTolerancePolicy>(
              std::make_unique<DifferenceFunction>(), config)),
      CheckFailure);
}

TEST(ValueEngine, VirtualGroupWithRtt) {
  Simulator sim;
  OriginServer origin(sim);
  EngineConfig engine_config;
  engine_config.rtt = 1.5;
  PollingEngine engine(sim, origin, engine_config);
  const ValueTrace a = ramp_trace("/a", 100.0, 0.005, 600.0, 10.0);
  const ValueTrace b("/b", 50.0, {}, 600.0);
  origin.attach_value_trace(a.name(), a);
  origin.attach_value_trace(b.name(), b);

  VirtualObjectPolicy::Config config;
  config.delta = 1.0;
  config.bounds = {5.0, 120.0};
  engine.add_virtual_group(
      {a.name(), b.name()},
      std::make_unique<VirtualObjectPolicy>(
          std::make_unique<DifferenceFunction>(), config));
  engine.start();
  sim.run_until(600.0);

  const auto snapshots = engine.poll_snapshot_times(a.name());
  const auto completions = engine.poll_completion_times(a.name());
  ASSERT_GT(snapshots.size(), 2u);
  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    EXPECT_DOUBLE_EQ(completions[i], snapshots[i] + 1.5);
  }
}

TEST(ValueEngine, VirtualGroupSurvivesLoss) {
  Simulator sim;
  OriginServer origin(sim);
  EngineConfig engine_config;
  engine_config.loss_probability = 0.3;
  engine_config.retry_delay = 1.0;
  engine_config.seed = 5;
  PollingEngine engine(sim, origin, engine_config);
  const ValueTrace a = ramp_trace("/a", 100.0, 0.01, 600.0, 5.0);
  const ValueTrace b = ramp_trace("/b", 50.0, 0.002, 600.0, 20.0);
  origin.attach_value_trace(a.name(), a);
  origin.attach_value_trace(b.name(), b);

  VirtualObjectPolicy::Config config;
  config.delta = 0.5;
  config.bounds = {2.0, 60.0};
  engine.add_virtual_group(
      {a.name(), b.name()},
      std::make_unique<VirtualObjectPolicy>(
          std::make_unique<DifferenceFunction>(), config));
  engine.start();
  sim.run_until(600.0);

  EXPECT_GT(engine.failed_polls(), 0u);
  EXPECT_GT(engine.polls_performed(), 20u);  // retries kept it alive
  // A joint poll can fail on its second member after the first succeeded
  // (the whole group then retries), so the member counts may differ — but
  // never by more than the number of failures.
  const std::size_t polls_a = engine.polls_performed(a.name());
  const std::size_t polls_b = engine.polls_performed(b.name());
  const std::size_t diff =
      polls_a > polls_b ? polls_a - polls_b : polls_b - polls_a;
  EXPECT_LE(diff, engine.failed_polls());
}

TEST(ValueEngine, MixedTemporalAndValueObjects) {
  // One engine tracking both domains at once (a realistic proxy).
  Simulator sim;
  OriginServer origin(sim);
  PollingEngine engine(sim, origin);
  const ValueTrace stock = ramp_trace("/stock", 100.0, 0.01, 600.0, 5.0);
  origin.attach_value_trace(stock.name(), stock);
  const UpdateTrace page("/page", {100.0, 200.0}, 600.0);
  origin.attach_update_trace(page.name(), page);

  AdaptiveValueTtrPolicy::Config value_config;
  value_config.delta = 1.0;
  value_config.bounds = {2.0, 120.0};
  engine.add_value_object(stock.name(), value_config);
  engine.add_temporal_object(page.name(),
                             std::make_unique<FixedPollPolicy>(60.0));
  engine.start();
  sim.run_until(600.0);

  EXPECT_GT(engine.polls_performed(stock.name()), 0u);
  EXPECT_EQ(engine.polls_performed(page.name()), 10u);  // 60..600
  EXPECT_TRUE(engine.cache().at(stock.name()).value.has_value());
  EXPECT_FALSE(engine.cache().at(page.name()).value.has_value());
}

TEST(ValueEngine, CrashRecoveryResetsValuePolicies) {
  Simulator sim;
  OriginServer origin(sim);
  PollingEngine engine(sim, origin);
  const ValueTrace flat("/flat", 100.0, {}, 1200.0);
  origin.attach_value_trace(flat.name(), flat);
  AdaptiveValueTtrPolicy::Config config;
  config.delta = 1.0;
  config.bounds = {2.0, 300.0};
  engine.add_value_object(flat.name(), config);
  engine.start();
  sim.run_until(600.0);
  // Flat object: TTR has grown well beyond the minimum.
  const auto& series = engine.ttr_series(flat.name());
  ASSERT_FALSE(series.empty());
  EXPECT_GT(series.back().second, 10.0);

  engine.crash_and_recover();
  sim.run_until(605.0);
  // First post-recovery poll within TTR_min.
  const auto times = engine.poll_completion_times(flat.name());
  EXPECT_LE(times.back() - 600.0, 2.0 + 1e-9);
}

}  // namespace
}  // namespace broadway

#include "consistency/rate_estimator.h"

#include <gtest/gtest.h>

namespace broadway {
namespace {

TemporalPollObservation modified_obs(TimePoint prev, TimePoint now,
                                     std::vector<TimePoint> history) {
  TemporalPollObservation obs;
  obs.previous_poll_time = prev;
  obs.poll_time = now;
  obs.modified = true;
  obs.last_modified = history.back();
  obs.history = std::move(history);
  return obs;
}

TEST(UpdateRateEstimator, ZeroUntilTwoModifications) {
  UpdateRateEstimator estimator;
  EXPECT_DOUBLE_EQ(estimator.rate(), 0.0);
  EXPECT_EQ(estimator.mean_gap(), kTimeInfinity);
  estimator.observe(modified_obs(0.0, 10.0, {5.0}));
  EXPECT_DOUBLE_EQ(estimator.rate(), 0.0);  // one instant, no gap yet
  estimator.observe(modified_obs(10.0, 20.0, {15.0}));
  EXPECT_GT(estimator.rate(), 0.0);
}

TEST(UpdateRateEstimator, LearnsGapFromLastModifiedSequence) {
  UpdateRateEstimator estimator(1.0);  // no smoothing: exact gaps
  estimator.observe(modified_obs(0.0, 10.0, {5.0}));
  estimator.observe(modified_obs(10.0, 20.0, {15.0}));
  EXPECT_DOUBLE_EQ(estimator.mean_gap(), 10.0);
  EXPECT_DOUBLE_EQ(estimator.rate(), 0.1);
  EXPECT_EQ(estimator.observed_modifications(), 2u);
}

TEST(UpdateRateEstimator, LearnsAllGapsFromHistory) {
  UpdateRateEstimator estimator(1.0);
  // One poll reveals three updates 10 apart: two gaps learned at once.
  estimator.observe(modified_obs(0.0, 40.0, {10.0, 20.0, 30.0}));
  EXPECT_DOUBLE_EQ(estimator.mean_gap(), 10.0);
  EXPECT_EQ(estimator.observed_modifications(), 3u);
}

TEST(UpdateRateEstimator, UnmodifiedPollsAreIgnored) {
  UpdateRateEstimator estimator;
  TemporalPollObservation obs;
  obs.previous_poll_time = 0.0;
  obs.poll_time = 10.0;
  obs.modified = false;
  estimator.observe(obs);
  EXPECT_EQ(estimator.observed_modifications(), 0u);
}

TEST(UpdateRateEstimator, RepeatedLastModifiedNotDoubleCounted) {
  UpdateRateEstimator estimator(1.0);
  estimator.observe(modified_obs(0.0, 10.0, {5.0}));
  // A triggered poll right after sees the same last-modified.
  estimator.observe(modified_obs(10.0, 10.0, {5.0}));
  EXPECT_EQ(estimator.observed_modifications(), 1u);
  EXPECT_DOUBLE_EQ(estimator.rate(), 0.0);
}

TEST(UpdateRateEstimator, SmoothingBlendsGaps) {
  UpdateRateEstimator estimator(0.5);
  estimator.observe(modified_obs(0.0, 10.0, {4.0}));
  estimator.observe(modified_obs(10.0, 20.0, {14.0}));   // gap 10
  estimator.observe(modified_obs(20.0, 30.0, {34.0}));   // gap 20
  EXPECT_DOUBLE_EQ(estimator.mean_gap(), 0.5 * 20.0 + 0.5 * 10.0);
}

TEST(UpdateRateEstimator, FasterObjectHasHigherRate) {
  UpdateRateEstimator fast(0.3);
  UpdateRateEstimator slow(0.3);
  TimePoint t = 0.0;
  for (int i = 1; i <= 10; ++i) {
    fast.observe(modified_obs(t, t + 10.0, {t + 5.0}));
    t += 10.0;
  }
  t = 0.0;
  for (int i = 1; i <= 10; ++i) {
    slow.observe(modified_obs(t, t + 100.0, {t + 50.0}));
    t += 100.0;
  }
  EXPECT_GT(fast.rate(), 5.0 * slow.rate());
}

TEST(UpdateRateEstimator, ResetForgets) {
  UpdateRateEstimator estimator;
  estimator.observe(modified_obs(0.0, 10.0, {2.0, 4.0, 6.0}));
  EXPECT_GT(estimator.rate(), 0.0);
  estimator.reset();
  EXPECT_DOUBLE_EQ(estimator.rate(), 0.0);
  EXPECT_EQ(estimator.observed_modifications(), 0u);
}

}  // namespace
}  // namespace broadway

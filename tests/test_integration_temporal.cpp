// End-to-end Δt experiments on the paper workloads (Fig. 3 / Fig. 4
// shapes).  These run the same harness as the bench binaries.
#include <gtest/gtest.h>

#include "harness/experiments.h"
#include "trace/paper_workloads.h"
#include "util/time.h"

namespace broadway {
namespace {

TemporalRunConfig limd_config(Duration delta) {
  TemporalRunConfig config;
  config.delta = delta;
  config.ttr_max = minutes(60.0);
  return config;
}

TEST(IntegrationTemporal, BaselineFidelityIsPerfect) {
  // "by definition, this baseline approach always provides perfect
  // fidelity" (§6.2.1).
  const UpdateTrace trace = make_cnn_fn_trace();
  for (double delta_min : {1.0, 10.0, 30.0}) {
    const auto result =
        run_baseline_individual(trace, minutes(delta_min));
    EXPECT_DOUBLE_EQ(result.fidelity.fidelity_violations(), 1.0)
        << "delta=" << delta_min << " min";
    EXPECT_DOUBLE_EQ(result.fidelity.fidelity_time(), 1.0);
  }
}

TEST(IntegrationTemporal, BaselinePollCountIsDurationOverDelta) {
  const UpdateTrace trace = make_cnn_fn_trace();
  const auto result = run_baseline_individual(trace, minutes(10.0));
  const auto expected =
      static_cast<std::size_t>(trace.duration() / minutes(10.0));
  EXPECT_NEAR(static_cast<double>(result.polls),
              static_cast<double>(expected), 2.0);
}

TEST(IntegrationTemporal, LimdSavesPollsAtTightDelta) {
  // Fig. 3(a): at Δ = 1 min the paper reports ~6x fewer polls than the
  // baseline, trading ~20% fidelity.
  const UpdateTrace trace = make_cnn_fn_trace();
  const auto limd = run_limd_individual(trace, limd_config(minutes(1.0)));
  const auto baseline = run_baseline_individual(trace, minutes(1.0));
  EXPECT_LT(static_cast<double>(limd.polls),
            0.4 * static_cast<double>(baseline.polls));
  EXPECT_GT(limd.fidelity.fidelity_violations(), 0.5);
}

TEST(IntegrationTemporal, LimdApproachesBaselineAtLooseDelta) {
  // Fig. 3: when Δ exceeds the update interval the LIMD poll count tracks
  // the baseline's.
  const UpdateTrace trace = make_cnn_fn_trace();
  const auto limd = run_limd_individual(trace, limd_config(minutes(45.0)));
  const auto baseline = run_baseline_individual(trace, minutes(45.0));
  EXPECT_LT(static_cast<double>(limd.polls),
            1.6 * static_cast<double>(baseline.polls));
  EXPECT_GT(static_cast<double>(limd.polls),
            0.5 * static_cast<double>(baseline.polls));
}

TEST(IntegrationTemporal, LimdFidelityImprovesWithDelta) {
  const UpdateTrace trace = make_cnn_fn_trace();
  const auto tight = run_limd_individual(trace, limd_config(minutes(1.0)));
  const auto loose = run_limd_individual(trace, limd_config(minutes(30.0)));
  EXPECT_GE(loose.fidelity.fidelity_violations(),
            tight.fidelity.fidelity_violations());
  EXPECT_GT(loose.fidelity.fidelity_violations(), 0.9);
}

TEST(IntegrationTemporal, BothFidelityMetricsAgreeDirectionally) {
  // Fig. 3(b) vs (c): "both measures of fidelity demonstrate a similar
  // behavior".
  const UpdateTrace trace = make_cnn_fn_trace();
  for (double delta_min : {5.0, 20.0, 60.0}) {
    const auto result =
        run_limd_individual(trace, limd_config(minutes(delta_min)));
    EXPECT_GE(result.fidelity.fidelity_time(), 0.5);
    // The two metrics should not wildly disagree.
    EXPECT_NEAR(result.fidelity.fidelity_time(),
                result.fidelity.fidelity_violations(), 0.45);
  }
}

TEST(IntegrationTemporal, TtrClimbsOvernightAndCollapsesByDay) {
  // Fig. 4(b): TTR grows to TTR_max during the nightly lull and shrinks
  // back in the morning.
  const UpdateTrace trace = make_cnn_fn_trace();
  const auto result = run_limd_individual(trace, limd_config(minutes(10.0)));
  Duration max_seen = 0.0;
  Duration min_seen = kTimeInfinity;
  for (const auto& [time, ttr] : result.ttr_series) {
    max_seen = std::max(max_seen, ttr);
    min_seen = std::min(min_seen, ttr);
  }
  EXPECT_DOUBLE_EQ(max_seen, minutes(60.0));  // reaches TTR_max at night
  EXPECT_DOUBLE_EQ(min_seen, minutes(10.0));  // pinned at TTR_min by day
}

TEST(IntegrationTemporal, TtrSeriesStaysWithinBounds) {
  for (const UpdateTrace& trace : make_all_temporal_traces()) {
    const auto result =
        run_limd_individual(trace, limd_config(minutes(10.0)));
    for (const auto& [time, ttr] : result.ttr_series) {
      EXPECT_GE(ttr, minutes(10.0)) << trace.name();
      EXPECT_LE(ttr, minutes(60.0)) << trace.name();
    }
  }
}

TEST(IntegrationTemporal, HistoryExtensionImprovesViolationDetection) {
  // A1 ablation shape: with the modification-history extension LIMD sees
  // Fig. 1(b) violations that Last-Modified alone misses, so it backs off
  // more (>= polls) and loses no fidelity.
  const UpdateTrace trace = make_guardian_trace();  // fastest updates
  TemporalRunConfig with_history = limd_config(minutes(5.0));
  with_history.detection = ViolationDetection::kExactHistory;
  with_history.origin_history = true;
  TemporalRunConfig without = limd_config(minutes(5.0));
  without.detection = ViolationDetection::kLastModifiedOnly;
  without.origin_history = false;
  const auto exact = run_limd_individual(trace, with_history);
  const auto blind = run_limd_individual(trace, without);
  EXPECT_GE(exact.polls + 5, blind.polls);
  EXPECT_GE(exact.fidelity.fidelity_violations(),
            blind.fidelity.fidelity_violations() - 0.05);
}

TEST(IntegrationTemporal, ConservativeParamsRaiseFidelityAndPolls) {
  // §3.1: "the approach can be made conservative by employing a large
  // multiplicative factor" — more polls, better fidelity.
  const UpdateTrace trace = make_nytimes_ap_trace();
  TemporalRunConfig optimistic = limd_config(minutes(5.0));
  optimistic.linear_increase = 0.6;
  optimistic.adaptive_m = false;
  optimistic.multiplicative_decrease = 0.9;
  TemporalRunConfig conservative = limd_config(minutes(5.0));
  conservative.linear_increase = 0.05;
  conservative.adaptive_m = false;
  conservative.multiplicative_decrease = 0.3;
  const auto fast = run_limd_individual(trace, optimistic);
  const auto safe = run_limd_individual(trace, conservative);
  EXPECT_GT(safe.polls, fast.polls);
  EXPECT_GE(safe.fidelity.fidelity_violations() + 0.02,
            fast.fidelity.fidelity_violations());
}

}  // namespace
}  // namespace broadway

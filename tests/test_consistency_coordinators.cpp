// Coordinator decision logic against scripted engine hooks (no simulator).
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "consistency/coordinator.h"
#include "consistency/heuristic.h"
#include "consistency/triggered.h"
#include "util/check.h"
#include "util/uri_table.h"

namespace broadway {
namespace {

// Scripted stand-in for the polling engine: hooks are ObjectId-keyed like
// the real ones (ids interned into a local table), while the test bodies
// keep scripting state by uri string.
struct FakeEngine {
  UriTable table;
  std::map<std::string, TimePoint> next_poll;
  std::map<std::string, TimePoint> last_poll;
  std::vector<std::string> triggered;

  CoordinatorHooks hooks() {
    CoordinatorHooks out;
    out.resolve = [this](const std::string& uri) {
      return table.intern(uri);
    };
    out.next_poll_time = [this](ObjectId id) {
      auto it = next_poll.find(table.uri(id));
      return it == next_poll.end() ? kTimeInfinity : it->second;
    };
    out.last_poll_time = [this](ObjectId id) {
      auto it = last_poll.find(table.uri(id));
      return it == last_poll.end() ? 0.0 : it->second;
    };
    out.trigger_poll = [this](ObjectId id) {
      triggered.push_back(table.uri(id));
    };
    return out;
  }
};

TemporalPollObservation modified_at(TimePoint prev, TimePoint now,
                                    TimePoint update) {
  TemporalPollObservation obs;
  obs.previous_poll_time = prev;
  obs.poll_time = now;
  obs.modified = true;
  obs.last_modified = update;
  obs.history = {update};
  return obs;
}

TemporalPollObservation unmodified(TimePoint prev, TimePoint now) {
  TemporalPollObservation obs;
  obs.previous_poll_time = prev;
  obs.poll_time = now;
  obs.modified = false;
  return obs;
}

TEST(NullCoordinator, NeverTriggers) {
  FakeEngine engine;
  NullCoordinator coordinator;
  coordinator.bind(engine.hooks());
  coordinator.on_poll("a", modified_at(0.0, 100.0, 50.0));
  EXPECT_TRUE(engine.triggered.empty());
}

TEST(TriggeredCoordinator, TriggersRelatedOnUpdate) {
  FakeEngine engine;
  engine.last_poll["b"] = 10.0;    // long ago
  engine.next_poll["b"] = 5000.0;  // far away
  TriggeredPollCoordinator coordinator({"a", "b"}, 60.0);
  coordinator.bind(engine.hooks());
  coordinator.on_poll("a", modified_at(900.0, 1000.0, 950.0));
  EXPECT_EQ(engine.triggered, (std::vector<std::string>{"b"}));
  EXPECT_EQ(coordinator.triggers_requested(), 1u);
}

TEST(TriggeredCoordinator, NoTriggerWithoutUpdate) {
  FakeEngine engine;
  engine.last_poll["b"] = 10.0;
  TriggeredPollCoordinator coordinator({"a", "b"}, 60.0);
  coordinator.bind(engine.hooks());
  coordinator.on_poll("a", unmodified(900.0, 1000.0));
  EXPECT_TRUE(engine.triggered.empty());
}

TEST(TriggeredCoordinator, SkipsRecentlyPolledMember) {
  // "no poll is required if the next/previous poll occurs within δ".
  FakeEngine engine;
  engine.last_poll["b"] = 980.0;  // 20 s ago, δ = 60
  engine.next_poll["b"] = 5000.0;
  TriggeredPollCoordinator coordinator({"a", "b"}, 60.0);
  coordinator.bind(engine.hooks());
  coordinator.on_poll("a", modified_at(900.0, 1000.0, 950.0));
  EXPECT_TRUE(engine.triggered.empty());
}

TEST(TriggeredCoordinator, SkipsImminentlyScheduledMember) {
  FakeEngine engine;
  engine.last_poll["b"] = 10.0;
  engine.next_poll["b"] = 1030.0;  // 30 s away, δ = 60
  TriggeredPollCoordinator coordinator({"a", "b"}, 60.0);
  coordinator.bind(engine.hooks());
  coordinator.on_poll("a", modified_at(900.0, 1000.0, 950.0));
  EXPECT_TRUE(engine.triggered.empty());
}

TEST(TriggeredCoordinator, DeltaZeroSelfStabilises) {
  // A member polled at this very instant must not be re-triggered even
  // with δ = 0 (cascade termination).
  FakeEngine engine;
  engine.last_poll["b"] = 1000.0;
  TriggeredPollCoordinator coordinator({"a", "b"}, 0.0);
  coordinator.bind(engine.hooks());
  coordinator.on_poll("a", modified_at(900.0, 1000.0, 950.0));
  EXPECT_TRUE(engine.triggered.empty());
}

TEST(TriggeredCoordinator, HandlesLargerGroups) {
  FakeEngine engine;
  for (const char* uri : {"b", "c", "d"}) {
    engine.last_poll[uri] = 10.0;
    engine.next_poll[uri] = 5000.0;
  }
  engine.last_poll["c"] = 990.0;  // within δ: skipped
  TriggeredPollCoordinator coordinator({"a", "b", "c", "d"}, 60.0);
  coordinator.bind(engine.hooks());
  coordinator.on_poll("a", modified_at(900.0, 1000.0, 950.0));
  EXPECT_EQ(engine.triggered, (std::vector<std::string>{"b", "d"}));
}

TEST(TriggeredCoordinator, Validation) {
  EXPECT_THROW(TriggeredPollCoordinator({"only"}, 60.0), CheckFailure);
  EXPECT_THROW(TriggeredPollCoordinator({"a", "b"}, -1.0), CheckFailure);
}

RateHeuristicCoordinator::Config heuristic_config() {
  RateHeuristicCoordinator::Config config;
  config.delta_mutual = 60.0;
  config.similarity = 0.8;
  config.rate_smoothing = 1.0;  // exact gaps, predictable tests
  return config;
}

// Teach the coordinator that `uri` updates every `gap` seconds, ending at
// time `until`.
void teach_rate(RateHeuristicCoordinator& coordinator, FakeEngine& engine,
                const std::string& uri, Duration gap, TimePoint until) {
  // Keep everyone's last_poll recent so teaching polls never trigger.
  TimePoint t = gap;
  TimePoint update = gap / 2.0;
  while (t <= until) {
    for (auto& [name, last] : engine.last_poll) last = t;
    coordinator.on_poll(uri, modified_at(t - gap, t, update));
    update += gap;
    t += gap;
  }
}

TEST(HeuristicCoordinator, TriggersFasterMemberOnly) {
  FakeEngine engine;
  engine.last_poll["slow"] = 0.0;
  engine.last_poll["fast"] = 0.0;
  engine.next_poll["slow"] = 1e9;
  engine.next_poll["fast"] = 1e9;
  RateHeuristicCoordinator coordinator({"slow", "fast"},
                                       heuristic_config());
  coordinator.bind(engine.hooks());
  teach_rate(coordinator, engine, "fast", 50.0, 2000.0);
  teach_rate(coordinator, engine, "slow", 400.0, 2000.0);
  EXPECT_GT(coordinator.estimated_rate("fast"),
            coordinator.estimated_rate("slow"));
  engine.triggered.clear();

  // The slow object updates -> the faster one is triggered (Fig. 6: "only
  // the slower object triggers extra polls of the faster object").
  engine.last_poll["slow"] = 2400.0;
  engine.last_poll["fast"] = 2000.0;
  coordinator.on_poll("slow", modified_at(2000.0, 2400.0, 2200.0));
  EXPECT_EQ(engine.triggered, (std::vector<std::string>{"fast"}));

  // The fast object updates -> the slower one is NOT triggered.
  engine.triggered.clear();
  engine.last_poll["fast"] = 2450.0;
  coordinator.on_poll("fast", modified_at(2400.0, 2450.0, 2425.0));
  EXPECT_TRUE(engine.triggered.empty());
}

TEST(HeuristicCoordinator, UnknownRateMembersNotTriggered) {
  FakeEngine engine;
  engine.last_poll["a"] = 0.0;
  engine.last_poll["b"] = 0.0;
  RateHeuristicCoordinator coordinator({"a", "b"}, heuristic_config());
  coordinator.bind(engine.hooks());
  // First observed update of "a"; "b" has no rate estimate yet.
  coordinator.on_poll("a", modified_at(900.0, 1000.0, 950.0));
  EXPECT_TRUE(engine.triggered.empty());
}

TEST(HeuristicCoordinator, StillRespectsDeltaWindow) {
  FakeEngine engine;
  engine.last_poll["a"] = 0.0;
  engine.last_poll["b"] = 0.0;
  engine.next_poll["b"] = 1e9;
  RateHeuristicCoordinator coordinator({"a", "b"}, heuristic_config());
  coordinator.bind(engine.hooks());
  teach_rate(coordinator, engine, "b", 50.0, 2000.0);
  teach_rate(coordinator, engine, "a", 50.0, 2000.0);
  engine.triggered.clear();
  // b polled 10 s ago (δ = 60): within the window, no trigger.
  engine.last_poll["b"] = 2390.0;
  coordinator.on_poll("a", modified_at(2000.0, 2400.0, 2200.0));
  EXPECT_TRUE(engine.triggered.empty());
}

TEST(HeuristicCoordinator, ResetClearsRates) {
  FakeEngine engine;
  engine.last_poll["a"] = 0.0;
  engine.last_poll["b"] = 0.0;
  RateHeuristicCoordinator coordinator({"a", "b"}, heuristic_config());
  coordinator.bind(engine.hooks());
  teach_rate(coordinator, engine, "a", 50.0, 1000.0);
  EXPECT_GT(coordinator.estimated_rate("a"), 0.0);
  coordinator.reset();
  EXPECT_DOUBLE_EQ(coordinator.estimated_rate("a"), 0.0);
}

TEST(HeuristicCoordinator, Validation) {
  EXPECT_THROW(RateHeuristicCoordinator({"x"}, heuristic_config()),
               CheckFailure);
}

TEST(Coordinator, UnboundUseFailsLoudly) {
  TriggeredPollCoordinator coordinator({"a", "b"}, 60.0);
  EXPECT_THROW(coordinator.on_poll("a", modified_at(0.0, 10.0, 5.0)),
               CheckFailure);
}

TEST(Coordinator, SubscriptionsExposeInternedMembers) {
  FakeEngine engine;
  TriggeredPollCoordinator coordinator({"a", "b"}, 60.0);
  EXPECT_TRUE(coordinator.subscriptions().empty());  // nothing before bind
  coordinator.bind(engine.hooks());
  const std::vector<ObjectId> subscriptions = coordinator.subscriptions();
  ASSERT_EQ(subscriptions.size(), 2u);
  EXPECT_EQ(subscriptions[0], engine.table.find("a"));
  EXPECT_EQ(subscriptions[1], engine.table.find("b"));
  // The null coordinator watches nothing: routed dispatch never calls it.
  NullCoordinator null_coordinator;
  null_coordinator.bind(engine.hooks());
  EXPECT_TRUE(null_coordinator.subscriptions().empty());
}

TEST(TriggeredCoordinator, IdKeyedDispatchMatchesStringWrapper) {
  FakeEngine engine;
  engine.last_poll["b"] = 10.0;
  engine.next_poll["b"] = 5000.0;
  TriggeredPollCoordinator coordinator({"a", "b"}, 60.0);
  coordinator.bind(engine.hooks());
  // The id fast path — what the engine's subscriber index dispatches.
  coordinator.on_poll(engine.table.find("a"),
                      modified_at(900.0, 1000.0, 950.0));
  EXPECT_EQ(engine.triggered, (std::vector<std::string>{"b"}));
  // The string wrapper resolves and lands in the same place.
  engine.triggered.clear();
  engine.last_poll["b"] = 10.0;
  coordinator.on_poll("a", modified_at(1900.0, 2000.0, 1950.0));
  EXPECT_EQ(engine.triggered, (std::vector<std::string>{"b"}));
}

TEST(TriggeredCoordinator, IgnoresNonMemberPolls) {
  // Broadcast-style dispatch may hand a coordinator polls of unrelated
  // objects; they must not re-synchronise the group.
  FakeEngine engine;
  engine.last_poll["a"] = 10.0;
  engine.last_poll["b"] = 10.0;
  TriggeredPollCoordinator coordinator({"a", "b"}, 60.0);
  coordinator.bind(engine.hooks());
  coordinator.on_poll("outsider", modified_at(900.0, 1000.0, 950.0));
  EXPECT_TRUE(engine.triggered.empty());
  EXPECT_EQ(coordinator.triggers_requested(), 0u);
}

TEST(HeuristicCoordinator, IgnoresNonMemberPolls) {
  FakeEngine engine;
  engine.last_poll["a"] = 0.0;
  engine.last_poll["b"] = 0.0;
  engine.next_poll["a"] = 1e9;
  engine.next_poll["b"] = 1e9;
  RateHeuristicCoordinator coordinator({"a", "b"}, heuristic_config());
  coordinator.bind(engine.hooks());
  teach_rate(coordinator, engine, "a", 50.0, 2000.0);
  teach_rate(coordinator, engine, "b", 50.0, 2000.0);
  engine.triggered.clear();
  // Both members have established (fast) rates, yet an unrelated object's
  // update must not trigger either of them.
  coordinator.on_poll("outsider", modified_at(2000.0, 2400.0, 2200.0));
  EXPECT_TRUE(engine.triggered.empty());
}

}  // namespace
}  // namespace broadway

// End-to-end scheduler/attachment differential tests.
//
// The calendar event queue (Simulator::Config::scheduler) and batch trace
// attachment (OriginServer::Config::batch_trace_attachment) both change
// *how* events are stored and created, and must change nothing about
// *what* the simulation computes.  These tests run full harness
// simulations — a cooperative-push fleet (run_fleet_temporal plus a
// direct ProxyFleet run for log-level access) and a value-domain run —
// under every combination of {heap, calendar} x {batch, per-update},
// selected the way CI selects them (the BROADWAY_SCHEDULER /
// BROADWAY_TRACE_ATTACHMENT environment variables), and assert
// byte-identical poll logs, TTR series, fidelity and counters.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "consistency/limd.h"
#include "fleet/proxy_fleet.h"
#include "harness/experiments.h"
#include "origin/origin_server.h"
#include "proxy/polling_engine.h"
#include "sim/simulator.h"
#include "trace/update_trace.h"
#include "trace/value_trace.h"
#include "util/rng.h"

namespace broadway {
namespace {

// Set an environment variable for the current scope, restoring the prior
// value on exit.  The suite is single-threaded; this is how the CI matrix
// and any user of the knobs actually selects a backend.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) previous_ = old;
    had_previous_ = old != nullptr;
    ::setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() {
    if (had_previous_) {
      ::setenv(name_, previous_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string previous_;
  bool had_previous_ = false;
};

struct Variant {
  const char* scheduler;
  const char* attachment;
};

constexpr Variant kVariants[] = {
    {"heap", "per-update"},
    {"heap", "batch"},
    {"calendar", "per-update"},
    {"calendar", "batch"},
};

std::string variant_name(const Variant& variant) {
  return std::string(variant.scheduler) + "/" + variant.attachment;
}

UpdateTrace irregular_trace(const std::string& name, std::uint64_t seed,
                            Duration horizon) {
  Rng rng(seed);
  std::vector<TimePoint> updates;
  TimePoint t = 0.0;
  for (;;) {
    t += rng.uniform(40.0, 900.0);
    if (t >= horizon) break;
    updates.push_back(t);
  }
  return UpdateTrace(name, std::move(updates), horizon);
}

ValueTrace wiggly_trace(const std::string& name, std::uint64_t seed,
                        Duration horizon) {
  Rng rng(seed);
  std::vector<ValueTrace::Step> steps;
  TimePoint t = 0.0;
  double value = 100.0;
  for (;;) {
    t += rng.uniform(5.0, 30.0);
    if (t >= horizon) break;
    value += rng.uniform(-0.4, 0.4);
    steps.push_back({t, value});
  }
  return ValueTrace(name, 100.0, std::move(steps), horizon);
}

void expect_records_identical(const std::vector<PollRecord>& a,
                              const std::vector<PollRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("record " + std::to_string(i));
    EXPECT_EQ(a[i].uri, b[i].uri);
    EXPECT_EQ(a[i].object, b[i].object);
    EXPECT_EQ(a[i].cause, b[i].cause);
    EXPECT_EQ(a[i].modified, b[i].modified);
    EXPECT_EQ(a[i].failed, b[i].failed);
    EXPECT_EQ(a[i].snapshot_time, b[i].snapshot_time);
    EXPECT_EQ(a[i].complete_time, b[i].complete_time);
  }
}

// ---- cooperative fleet -----------------------------------------------------

std::vector<UpdateTrace> fleet_traces(Duration horizon) {
  std::vector<UpdateTrace> traces;
  for (int i = 0; i < 5; ++i) {
    traces.push_back(
        irregular_trace("/object/" + std::to_string(i), 300 + i, horizon));
  }
  return traces;
}

struct FleetArtifacts {
  std::vector<PollRecord> records;  // all proxies, proxy-major
  std::vector<std::vector<std::pair<TimePoint, Duration>>> ttr_series;
  std::size_t origin_requests = 0;
  std::size_t relays_delivered = 0;
  std::size_t relays_applied = 0;
  FleetRunResult harness;
};

FleetArtifacts run_fleet_variant() {
  constexpr Duration kHorizon = 25000.0;
  const std::vector<UpdateTrace> traces = fleet_traces(kHorizon);

  FleetArtifacts artifacts;
  {
    // Direct fleet run: full poll logs and TTR series per proxy.
    Simulator sim;
    OriginServer origin(sim);
    for (const UpdateTrace& trace : traces) {
      origin.attach_update_trace(trace.name(), trace);
    }
    FleetConfig config;
    config.proxies = 3;
    config.cooperative_push = true;
    config.relay_latency = 0.5;
    config.engine.rtt = 0.1;
    config.engine.loss_probability = 0.03;
    config.engine.retry_delay = 2.0;
    ProxyFleet fleet(sim, origin, config);
    for (const UpdateTrace& trace : traces) {
      fleet.add_temporal_object_everywhere(trace.name(), [] {
        return std::make_unique<LimdPolicy>(
            LimdPolicy::Config::paper_defaults(600.0));
      });
    }
    fleet.start();
    sim.run_until(kHorizon);
    for (std::size_t p = 0; p < fleet.size(); ++p) {
      const auto& records = fleet.proxy(p).poll_log().records();
      artifacts.records.insert(artifacts.records.end(), records.begin(),
                               records.end());
      for (const UpdateTrace& trace : traces) {
        artifacts.ttr_series.push_back(
            fleet.proxy(p).ttr_series(trace.name()));
      }
    }
    artifacts.origin_requests = origin.requests_served();
    artifacts.relays_delivered = fleet.relays_delivered();
    artifacts.relays_applied = fleet.relays_applied();
  }
  // Harness-level run: the whole reporting surface.
  FleetRunConfig harness_config;
  harness_config.proxies = 2;
  harness_config.cooperative_push = true;
  harness_config.base.delta = 600.0;
  artifacts.harness = run_fleet_temporal(traces, harness_config);
  return artifacts;
}

TEST(SchedulerDifferential, FleetRunsAreByteIdentical) {
  std::vector<FleetArtifacts> results;
  for (const Variant& variant : kVariants) {
    SCOPED_TRACE(variant_name(variant));
    ScopedEnv scheduler("BROADWAY_SCHEDULER", variant.scheduler);
    ScopedEnv attachment("BROADWAY_TRACE_ATTACHMENT", variant.attachment);
    results.push_back(run_fleet_variant());
  }
  const FleetArtifacts& reference = results.front();
  ASSERT_FALSE(reference.records.empty());
  for (std::size_t v = 1; v < results.size(); ++v) {
    SCOPED_TRACE(variant_name(kVariants[v]) + " vs " +
                 variant_name(kVariants[0]));
    const FleetArtifacts& candidate = results[v];
    expect_records_identical(reference.records, candidate.records);
    EXPECT_EQ(reference.ttr_series, candidate.ttr_series);
    EXPECT_EQ(reference.origin_requests, candidate.origin_requests);
    EXPECT_EQ(reference.relays_delivered, candidate.relays_delivered);
    EXPECT_EQ(reference.relays_applied, candidate.relays_applied);
    EXPECT_EQ(reference.harness.origin_requests,
              candidate.harness.origin_requests);
    EXPECT_EQ(reference.harness.origin_polls, candidate.harness.origin_polls);
    EXPECT_EQ(reference.harness.relays_delivered,
              candidate.harness.relays_delivered);
    EXPECT_EQ(reference.harness.relays_applied,
              candidate.harness.relays_applied);
    EXPECT_EQ(reference.harness.origin_polls_per_second,
              candidate.harness.origin_polls_per_second);
    EXPECT_EQ(reference.harness.mean_fidelity_time,
              candidate.harness.mean_fidelity_time);
    EXPECT_EQ(reference.harness.min_fidelity_time,
              candidate.harness.min_fidelity_time);
    EXPECT_EQ(reference.harness.mean_fidelity_violations,
              candidate.harness.mean_fidelity_violations);
  }
}

// ---- value domain ----------------------------------------------------------

struct ValueArtifacts {
  std::vector<PollRecord> records;
  ValueRunResult harness;
};

ValueArtifacts run_value_variant() {
  constexpr Duration kHorizon = 8000.0;
  const ValueTrace trace = wiggly_trace("/stock/x", 77, kHorizon);

  ValueArtifacts artifacts;
  {
    // Direct engine run for log-level access (the harness returns only
    // aggregates).
    Simulator sim;
    OriginServer origin(sim);
    origin.attach_value_trace(trace.name(), trace);
    EngineConfig engine;
    engine.rtt = 0.05;
    engine.loss_probability = 0.02;
    engine.retry_delay = 1.5;
    PollingEngine proxy(sim, origin, engine);
    AdaptiveValueTtrPolicy::Config policy;
    policy.delta = 0.5;
    policy.bounds = {1.0, 300.0};
    proxy.add_value_object(trace.name(), policy);
    proxy.start();
    sim.run_until(kHorizon);
    artifacts.records = proxy.poll_log().records();
  }
  ValueRunConfig config;
  config.delta = 0.5;
  config.bounds = {1.0, 300.0};
  artifacts.harness = run_value_individual(trace, config);
  return artifacts;
}

TEST(SchedulerDifferential, ValueRunsAreByteIdentical) {
  std::vector<ValueArtifacts> results;
  for (const Variant& variant : kVariants) {
    SCOPED_TRACE(variant_name(variant));
    ScopedEnv scheduler("BROADWAY_SCHEDULER", variant.scheduler);
    ScopedEnv attachment("BROADWAY_TRACE_ATTACHMENT", variant.attachment);
    results.push_back(run_value_variant());
  }
  const ValueArtifacts& reference = results.front();
  ASSERT_FALSE(reference.records.empty());
  for (std::size_t v = 1; v < results.size(); ++v) {
    SCOPED_TRACE(variant_name(kVariants[v]) + " vs " +
                 variant_name(kVariants[0]));
    const ValueArtifacts& candidate = results[v];
    expect_records_identical(reference.records, candidate.records);
    EXPECT_EQ(reference.harness.polls, candidate.harness.polls);
    EXPECT_EQ(reference.harness.fidelity.windows,
              candidate.harness.fidelity.windows);
    EXPECT_EQ(reference.harness.fidelity.violations,
              candidate.harness.fidelity.violations);
    EXPECT_EQ(reference.harness.fidelity.out_sync_time,
              candidate.harness.fidelity.out_sync_time);
    EXPECT_EQ(reference.harness.fidelity.horizon,
              candidate.harness.fidelity.horizon);
  }
}

// The env knobs themselves: what CI sets must be what the constructors
// read.
TEST(SchedulerDifferential, EnvironmentSelectsBackends) {
  {
    ScopedEnv scheduler("BROADWAY_SCHEDULER", "heap");
    Simulator sim;
    EXPECT_EQ(sim.scheduler(), SchedulerBackend::kBinaryHeap);
  }
  {
    ScopedEnv scheduler("BROADWAY_SCHEDULER", "calendar");
    Simulator sim;
    EXPECT_EQ(sim.scheduler(), SchedulerBackend::kCalendar);
  }
  {
    ScopedEnv attachment("BROADWAY_TRACE_ATTACHMENT", "per-update");
    EXPECT_FALSE(OriginServer::Config().batch_trace_attachment);
  }
  {
    ScopedEnv attachment("BROADWAY_TRACE_ATTACHMENT", "batch");
    EXPECT_TRUE(OriginServer::Config().batch_trace_attachment);
  }
}

}  // namespace
}  // namespace broadway

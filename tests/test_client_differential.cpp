// Client-traffic differential tests: the sharded fleet must reproduce
// the single-simulator fleet's client-side observations byte for byte.
//
// The poll-log differential (test_sharded_differential.cpp) pins the
// proxy-side streams; this file pins the layer above them — per-proxy
// ClientMetrics (including the floating-point OnlineStats), the merged
// fleet metrics, the recorded request streams, and the read-transaction
// evaluation derived from the logs — across {1, 2, 4, 8} worker threads
// and both scheduler backends.  Client streams are seeded and tagged by
// global proxy id and read only shard-local state, so determinism holds
// by construction; these tests are the teeth.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "client/client_metrics.h"
#include "client/client_traffic.h"
#include "client/read_transactions.h"
#include "consistency/limd.h"
#include "fleet/faults.h"
#include "fleet/proxy_fleet.h"
#include "fleet/sharded_fleet.h"
#include "origin/origin_server.h"
#include "proxy/polling_engine.h"
#include "sim/simulator.h"
#include "trace/diurnal.h"
#include "trace/update_trace.h"
#include "util/rng.h"

namespace broadway {
namespace {

// Set an environment variable for the current scope (the CI matrix
// idiom; see test_scheduler_differential.cpp).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) previous_ = old;
    had_previous_ = old != nullptr;
    ::setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() {
    if (had_previous_) {
      ::setenv(name_, previous_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string previous_;
  bool had_previous_ = false;
};

constexpr Duration kHorizon = 9000.0;
constexpr std::size_t kThreadCounts[] = {1, 2, 4, 8};

UpdateTrace irregular_trace(const std::string& name, std::uint64_t seed,
                            Duration horizon) {
  Rng rng(seed);
  std::vector<TimePoint> updates;
  TimePoint t = 0.0;
  for (;;) {
    t += rng.uniform(40.0, 900.0);
    if (t >= horizon) break;
    updates.push_back(t);
  }
  return UpdateTrace(name, std::move(updates), horizon);
}

struct Topology {
  std::size_t proxies = 0;
  std::vector<UpdateTrace> traces;
};

Topology random_topology(std::uint64_t seed) {
  Rng rng(seed);
  Topology topo;
  topo.proxies = 3 + static_cast<std::size_t>(rng.uniform(0.0, 3.0));
  const std::size_t objects =
      2 + static_cast<std::size_t>(rng.uniform(0.0, 3.0));
  for (std::size_t o = 0; o < objects; ++o) {
    topo.traces.push_back(irregular_trace("/object/" + std::to_string(o),
                                          seed * 100 + o, kHorizon));
  }
  return topo;
}

FleetConfig fleet_config(std::size_t proxies, bool demand_fill = false,
                         const FaultSchedule& faults = {}) {
  FleetConfig config;
  config.proxies = proxies;
  config.faults = faults;
  config.cooperative_push = true;
  // Non-harmonic constants, as in the poll-log differential.
  config.relay_latency = 0.7;
  config.engine.rtt = 0.1;
  config.engine.loss_probability = 0.05;
  config.engine.retry_delay = 2.0;

  ClientTrafficConfig traffic;
  traffic.request_rate = 1.5;
  traffic.zipf_exponent = 0.9;
  traffic.profile = DiurnalProfile::newsroom();
  traffic.start_hour = 9.0;  // start inside the busy hours
  traffic.seed = 17;
  traffic.record_requests = true;
  if (demand_fill) {
    // The demand-fill sweep runs lossier with slow retries (long uncached
    // windows only a fill can close) and with per-client session locality
    // on, so the 3-draw request stream and the kClientMiss poll path both
    // cross the shard barrier.
    config.engine.demand_fill = true;
    config.engine.loss_probability = 0.25;
    config.engine.retry_delay = 600.0;
    traffic.session_locality = 0.3;
    traffic.session_objects = 3;
  }
  config.client_traffic = traffic;
  return config;
}

ProxyFleet::PolicyFactory limd_factory() {
  return [] {
    return std::make_unique<LimdPolicy>(
        LimdPolicy::Config::paper_defaults(600.0));
  };
}

struct Artifacts {
  std::vector<ClientMetrics> per_proxy;
  ClientMetrics merged;
  std::vector<ClientRequestRecord> records;
  TransactionStats transactions;
  FleetOriginLoad origin_load;
  PollCauseCounts causes;
  // Relay-channel fault ledger; all zero in fault-free runs.  The pinned
  // invariant: sent == delivered + in_flight + lost.
  std::size_t relays_sent = 0;
  std::size_t relays_delivered = 0;
  std::size_t relays_in_flight = 0;
  std::size_t relays_lost = 0;
  std::size_t relays_retried = 0;
  std::size_t relays_dropped_dark = 0;
};

// The origin-load invariant, cross-checked the non-tautological way: the
// O(1) counters behind FleetOriginLoad must agree with a recount of every
// proxy's full record stream, and the demand-fill split must balance.
void expect_origin_invariant(const Artifacts& artifacts) {
  const FleetOriginLoad& load = artifacts.origin_load;
  const PollCauseCounts& causes = artifacts.causes;
  EXPECT_EQ(causes.client_miss, load.demand_fills);
  EXPECT_EQ(causes.total_refreshes(), load.origin_polls);
  EXPECT_EQ(causes.scheduled + causes.triggered + causes.retry,
            load.policy_polls());
  EXPECT_EQ(load.origin_polls, load.policy_polls() + load.demand_fills);
  EXPECT_EQ(causes.failed, load.failed);
  // Client-side and proxy-side accounting of the same fills agree.
  EXPECT_EQ(artifacts.merged.demand_fills, load.demand_fills);
}

ReadTransactionConfig transaction_config() {
  ReadTransactionConfig config;
  config.rate = 0.05;
  config.objects = 3;
  config.delta = 300.0;
  config.seed = 23;
  return config;
}

template <typename Fleet>
TransactionStats evaluate_transactions(Fleet& fleet) {
  std::vector<const PollLog*> logs;
  for (std::size_t p = 0; p < fleet.size(); ++p) {
    logs.push_back(&fleet.proxy(p).poll_log());
  }
  return evaluate_read_transactions(logs, transaction_config(), kHorizon);
}

template <typename Fleet>
void collect_origin_accounting(Fleet& fleet, Artifacts& artifacts) {
  artifacts.origin_load = fleet.origin_load();
  for (std::size_t p = 0; p < fleet.size(); ++p) {
    artifacts.causes.merge(count_by_cause(fleet.proxy(p).poll_log()));
  }
  artifacts.relays_sent = fleet.relays_sent();
  artifacts.relays_delivered = fleet.relays_delivered();
  artifacts.relays_in_flight = fleet.relays_in_flight();
  artifacts.relays_lost = fleet.relays_lost();
  artifacts.relays_retried = fleet.relays_retried();
  artifacts.relays_dropped_dark = fleet.relays_dropped_dark();
}

Artifacts reference_run(const Topology& topo, Duration horizon,
                        bool demand_fill = false,
                        const FaultSchedule& faults = {}) {
  Simulator sim;
  OriginServer origin(sim);
  for (const UpdateTrace& trace : topo.traces) {
    origin.attach_update_trace(trace.name(), trace);
  }
  ProxyFleet fleet(sim, origin,
                   fleet_config(topo.proxies, demand_fill, faults));
  const auto factory = limd_factory();
  for (const UpdateTrace& trace : topo.traces) {
    fleet.add_temporal_object_everywhere(trace.name(), factory);
  }
  fleet.start();
  sim.run_until(horizon);

  Artifacts artifacts;
  for (std::size_t p = 0; p < fleet.size(); ++p) {
    artifacts.per_proxy.push_back(fleet.client_traffic().metrics(p));
  }
  artifacts.merged = fleet.merged_client_metrics();
  artifacts.records = fleet.merged_client_records();
  artifacts.transactions = evaluate_transactions(fleet);
  collect_origin_accounting(fleet, artifacts);
  return artifacts;
}

Artifacts sharded_run(const Topology& topo, std::size_t threads,
                      Duration horizon, std::size_t shards = 0,
                      WindowPolicy policy = WindowPolicy::kAdaptive,
                      bool demand_fill = false,
                      const FaultSchedule& faults = {}) {
  ShardedFleetConfig config;
  config.fleet = fleet_config(topo.proxies, demand_fill, faults);
  config.threads = threads;
  config.shards = shards;
  config.window_policy = policy;
  config.origin_setup = [traces = topo.traces](OriginServer& origin) {
    for (const UpdateTrace& trace : traces) {
      origin.attach_update_trace(trace.name(), trace);
    }
  };
  ShardedFleet fleet(std::move(config));
  const auto factory = limd_factory();
  for (const UpdateTrace& trace : topo.traces) {
    fleet.add_temporal_object_everywhere(trace.name(), factory);
  }
  fleet.start();
  fleet.run_until(horizon);

  Artifacts artifacts;
  for (std::size_t p = 0; p < fleet.size(); ++p) {
    artifacts.per_proxy.push_back(fleet.client_metrics(p));
  }
  artifacts.merged = fleet.merged_client_metrics();
  artifacts.records = fleet.merged_client_records();
  artifacts.transactions = evaluate_transactions(fleet);
  collect_origin_accounting(fleet, artifacts);
  return artifacts;
}

// Every double compared with ==: the bar is byte-identical, not close.
void expect_stats_identical(const OnlineStats& a, const OnlineStats& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.variance(), b.variance());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  EXPECT_EQ(a.sum(), b.sum());
}

void expect_metrics_identical(const ClientMetrics& a, const ClientMetrics& b) {
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.fresh, b.fresh);
  EXPECT_EQ(a.stale, b.stale);
  EXPECT_EQ(a.demand_fills, b.demand_fills);
  EXPECT_EQ(a.dark_reads, b.dark_reads);
  EXPECT_EQ(a.dark_stale, b.dark_stale);
  EXPECT_EQ(a.dark_misses, b.dark_misses);
  expect_stats_identical(a.age, b.age);
  expect_stats_identical(a.staleness, b.staleness);
  expect_stats_identical(a.fill_latency, b.fill_latency);
}

void expect_artifacts_identical(const Artifacts& reference,
                                const Artifacts& candidate) {
  ASSERT_EQ(reference.per_proxy.size(), candidate.per_proxy.size());
  for (std::size_t p = 0; p < reference.per_proxy.size(); ++p) {
    SCOPED_TRACE("proxy " + std::to_string(p));
    expect_metrics_identical(reference.per_proxy[p], candidate.per_proxy[p]);
  }
  expect_metrics_identical(reference.merged, candidate.merged);

  ASSERT_EQ(reference.records.size(), candidate.records.size());
  for (std::size_t i = 0; i < reference.records.size(); ++i) {
    SCOPED_TRACE("record " + std::to_string(i));
    const ClientRequestRecord& a = reference.records[i];
    const ClientRequestRecord& b = candidate.records[i];
    EXPECT_EQ(a.time, b.time);
    EXPECT_EQ(a.proxy, b.proxy);
    EXPECT_EQ(a.client, b.client);
    EXPECT_EQ(a.object, b.object);
    EXPECT_EQ(a.read.hit, b.read.hit);
    EXPECT_EQ(a.read.fresh, b.read.fresh);
    EXPECT_EQ(a.read.filled, b.read.filled);
    EXPECT_EQ(a.read.dark, b.read.dark);
    EXPECT_EQ(a.read.fill_latency, b.read.fill_latency);
    EXPECT_EQ(a.read.snapshot, b.read.snapshot);
    EXPECT_EQ(a.read.age, b.read.age);
    EXPECT_EQ(a.read.staleness, b.read.staleness);
  }

  EXPECT_EQ(reference.transactions.transactions,
            candidate.transactions.transactions);
  EXPECT_EQ(reference.transactions.complete, candidate.transactions.complete);
  EXPECT_EQ(reference.transactions.incomplete,
            candidate.transactions.incomplete);
  EXPECT_EQ(reference.transactions.violations,
            candidate.transactions.violations);
  expect_stats_identical(reference.transactions.spread,
                         candidate.transactions.spread);

  EXPECT_EQ(reference.origin_load.origin_messages,
            candidate.origin_load.origin_messages);
  EXPECT_EQ(reference.origin_load.origin_polls,
            candidate.origin_load.origin_polls);
  EXPECT_EQ(reference.origin_load.relay_refreshes,
            candidate.origin_load.relay_refreshes);
  EXPECT_EQ(reference.origin_load.demand_fills,
            candidate.origin_load.demand_fills);
  EXPECT_EQ(reference.origin_load.failed, candidate.origin_load.failed);
  EXPECT_EQ(reference.causes.initial, candidate.causes.initial);
  EXPECT_EQ(reference.causes.scheduled, candidate.causes.scheduled);
  EXPECT_EQ(reference.causes.triggered, candidate.causes.triggered);
  EXPECT_EQ(reference.causes.retry, candidate.causes.retry);
  EXPECT_EQ(reference.causes.relay, candidate.causes.relay);
  EXPECT_EQ(reference.causes.client_miss, candidate.causes.client_miss);
  EXPECT_EQ(reference.causes.failed, candidate.causes.failed);
  EXPECT_EQ(reference.relays_sent, candidate.relays_sent);
  EXPECT_EQ(reference.relays_delivered, candidate.relays_delivered);
  EXPECT_EQ(reference.relays_in_flight, candidate.relays_in_flight);
  EXPECT_EQ(reference.relays_lost, candidate.relays_lost);
  EXPECT_EQ(reference.relays_retried, candidate.relays_retried);
  EXPECT_EQ(reference.relays_dropped_dark, candidate.relays_dropped_dark);
}

TEST(ClientDifferential, ByteIdenticalAcrossThreadCountsAndSchedulers) {
  for (const char* scheduler : {"heap", "calendar"}) {
    ScopedEnv env("BROADWAY_SCHEDULER", scheduler);
    for (const std::uint64_t seed : {13u, 29u}) {
      SCOPED_TRACE(std::string(scheduler) + " topology seed " +
                   std::to_string(seed));
      const Topology topo = random_topology(seed);
      const Artifacts reference = reference_run(topo, kHorizon);
      // The workload must actually exercise the interesting paths.
      ASSERT_GT(reference.merged.requests, 0u);
      ASSERT_GT(reference.merged.hits, 0u);
      ASSERT_GT(reference.transactions.complete, 0u);
      for (const std::size_t threads : kThreadCounts) {
        SCOPED_TRACE("threads " + std::to_string(threads));
        expect_artifacts_identical(reference,
                                   sharded_run(topo, threads, kHorizon));
      }
    }
  }
}

// Client streams read the whole cache of their proxy, so a partitioned
// layout pins each proxy's pairs to one slice (the layout may still pack
// several proxies per shard); the window policy stays a free knob.  Both
// must leave every client-side observation byte-identical.
TEST(ClientDifferential, WindowPolicyAndPartitionSweepIsByteIdentical) {
  for (const char* scheduler : {"heap", "calendar"}) {
    ScopedEnv env("BROADWAY_SCHEDULER", scheduler);
    const std::uint64_t seed = 29u;
    SCOPED_TRACE(std::string(scheduler) + " topology seed " +
                 std::to_string(seed));
    const Topology topo = random_topology(seed);
    const Artifacts reference = reference_run(topo, kHorizon);
    ASSERT_GT(reference.merged.requests, 0u);
    for (const WindowPolicy policy :
         {WindowPolicy::kFixed, WindowPolicy::kAdaptive}) {
      for (const std::size_t threads : kThreadCounts) {
        SCOPED_TRACE(
            std::string(policy == WindowPolicy::kFixed ? "fixed"
                                                       : "adaptive") +
            " windows, " + std::to_string(threads) + " threads");
        expect_artifacts_identical(
            reference,
            sharded_run(topo, threads, kHorizon, topo.proxies + 3, policy));
      }
    }
  }
}

// The tentpole differential: with demand fills and session locality on,
// every client-side and origin-side artifact — including the kClientMiss
// poll stream and its relay fan-out — stays byte-identical across thread
// counts, partitioned shard layouts (shards > proxies) and both window
// policies, and the origin-load invariant holds in every configuration.
// The adaptive window's client-candidate fold (ShardedFleet folds
// next_client_fire into shard_send_bound when fills are on) is exactly
// the code under test here.
TEST(ClientDifferential, DemandFillSweepIsByteIdenticalWithInvariant) {
  for (const char* scheduler : {"heap", "calendar"}) {
    ScopedEnv env("BROADWAY_SCHEDULER", scheduler);
    for (const std::uint64_t seed : {13u, 29u}) {
      SCOPED_TRACE(std::string(scheduler) + " topology seed " +
                   std::to_string(seed));
      const Topology topo = random_topology(seed);
      const Artifacts reference =
          reference_run(topo, kHorizon, /*demand_fill=*/true);
      // The workload must actually demand-fill, and filled reads stay
      // misses (hits + misses == requests is the client-side ledger).
      ASSERT_GT(reference.merged.demand_fills, 0u);
      ASSERT_EQ(reference.merged.hits + reference.merged.misses,
                reference.merged.requests);
      expect_origin_invariant(reference);

      // Demand filling must strictly reduce the client miss count on the
      // same topology and seeds (the fills-off run differs only in the
      // engine knob; locality stays on so the request streams match).
      FleetConfig off_config = fleet_config(topo.proxies, true);
      off_config.engine.demand_fill = false;
      {
        Simulator sim;
        OriginServer origin(sim);
        for (const UpdateTrace& trace : topo.traces) {
          origin.attach_update_trace(trace.name(), trace);
        }
        ProxyFleet off_fleet(sim, origin, off_config);
        const auto factory = limd_factory();
        for (const UpdateTrace& trace : topo.traces) {
          off_fleet.add_temporal_object_everywhere(trace.name(), factory);
        }
        off_fleet.start();
        sim.run_until(kHorizon);
        const ClientMetrics off = off_fleet.merged_client_metrics();
        EXPECT_EQ(off.demand_fills, 0u);
        EXPECT_LT(reference.merged.misses, off.misses);
      }

      for (const std::size_t threads : kThreadCounts) {
        SCOPED_TRACE("threads " + std::to_string(threads));
        const Artifacts whole =
            sharded_run(topo, threads, kHorizon, /*shards=*/0,
                        WindowPolicy::kAdaptive, /*demand_fill=*/true);
        expect_artifacts_identical(reference, whole);
        expect_origin_invariant(whole);
        for (const WindowPolicy policy :
             {WindowPolicy::kFixed, WindowPolicy::kAdaptive}) {
          SCOPED_TRACE(policy == WindowPolicy::kFixed ? "fixed windows"
                                                      : "adaptive windows");
          const Artifacts partitioned =
              sharded_run(topo, threads, kHorizon, topo.proxies + 3, policy,
                          /*demand_fill=*/true);
          expect_artifacts_identical(reference, partitioned);
          expect_origin_invariant(partitioned);
        }
      }
    }
  }
}

// Fault injection, seen from the client's seat: with crash windows on
// two proxies, relay loss, jitter and capped-backoff retries layered on
// the demand-fill workload, every client-side artifact — including the
// dark-read degradation counters and the per-record dark flags — and the
// relay fault ledger must stay byte-identical across thread counts,
// whole-proxy and partitioned layouts and both window policies.  Client
// traffic keeps each proxy whole, so per-proxy metrics stay comparable
// even under the partitioned request.
TEST(ClientDifferential, FaultInjectionSweepIsByteIdentical) {
  FaultSchedule faults;
  faults.crashes.push_back({0, {{2500.0, 3600.0}, {6800.0, 7500.0}}});
  faults.crashes.push_back({1, {{4700.0, 5600.0}}});
  faults.relay_loss = 0.1;
  faults.relay_jitter_max = 0.3;
  faults.retry_backoff_base = 1.0;
  faults.retry_backoff_cap = 8.0;
  faults.relay_retry_limit = 4;

  for (const char* scheduler : {"heap", "calendar"}) {
    ScopedEnv env("BROADWAY_SCHEDULER", scheduler);
    const std::uint64_t seed = 13u;
    SCOPED_TRACE(std::string(scheduler) + " topology seed " +
                 std::to_string(seed));
    const Topology topo = random_topology(seed);
    const Artifacts reference =
        reference_run(topo, kHorizon, /*demand_fill=*/true, faults);
    // The outages must actually degrade service — reads served dark,
    // stale hits among them, losses retried.  (Dark *misses* need a cold
    // cache at crash time; test_fleet_faults pins that classification
    // with a purpose-built cold-start scenario.)
    ASSERT_GT(reference.merged.dark_reads, 0u);
    ASSERT_GT(reference.merged.dark_stale, 0u);
    ASSERT_GT(reference.relays_lost, 0u);
    ASSERT_GT(reference.relays_retried, 0u);
    EXPECT_EQ(reference.merged.hits + reference.merged.misses,
              reference.merged.requests);
    EXPECT_EQ(reference.relays_sent,
              reference.relays_delivered + reference.relays_in_flight +
                  reference.relays_lost);
    // Dark reads never demand-fill: every recorded dark read is unfilled.
    for (const ClientRequestRecord& record : reference.records) {
      if (record.read.dark) EXPECT_FALSE(record.read.filled);
    }

    for (const std::size_t threads : kThreadCounts) {
      SCOPED_TRACE("threads " + std::to_string(threads));
      expect_artifacts_identical(
          reference, sharded_run(topo, threads, kHorizon, /*shards=*/0,
                                 WindowPolicy::kAdaptive,
                                 /*demand_fill=*/true, faults));
      for (const WindowPolicy policy :
           {WindowPolicy::kFixed, WindowPolicy::kAdaptive}) {
        SCOPED_TRACE(policy == WindowPolicy::kFixed ? "fixed windows"
                                                    : "adaptive windows");
        expect_artifacts_identical(
            reference, sharded_run(topo, threads, kHorizon, topo.proxies + 3,
                                   policy, /*demand_fill=*/true, faults));
      }
    }
  }
}

}  // namespace
}  // namespace broadway

// Client traffic layer unit pins: read classification against ground
// truth, metrics merging, record merge order, the relay-snapshot
// staleness contract, transaction evaluation over hand-built poll logs,
// and the fail-fast construction contracts.
#include <gtest/gtest.h>

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "client/client_metrics.h"
#include "client/client_traffic.h"
#include "client/read_transactions.h"
#include "consistency/fixed_poll.h"
#include "fleet/proxy_fleet.h"
#include "metrics/accounting.h"
#include "origin/object.h"
#include "origin/origin_server.h"
#include "proxy/poll_log.h"
#include "proxy/polling_engine.h"
#include "sim/simulator.h"
#include "util/check.h"
#include "util/rng.h"

namespace broadway {
namespace {

// ---- read classification ---------------------------------------------------

TEST(ClassifyClientRead, MissCarriesNoFreshness) {
  const ClientReadSample sample =
      classify_client_read(50.0, /*hit=*/false, 0.0, nullptr);
  EXPECT_FALSE(sample.hit);
  EXPECT_FALSE(sample.fresh);
}

TEST(ClassifyClientRead, FreshAndStaleAgainstGroundTruth) {
  VersionedObject truth("/x", 0.0);
  truth.apply_update(100.0);
  truth.apply_update(200.0);

  // Served copy reflects t = 120: it missed the update at 200 (first
  // unseen), so at now = 250 it has been stale for 50 s and is 130 s old.
  const ClientReadSample stale =
      classify_client_read(250.0, /*hit=*/true, 120.0, &truth);
  EXPECT_TRUE(stale.hit);
  EXPECT_FALSE(stale.fresh);
  EXPECT_EQ(stale.snapshot, 120.0);
  EXPECT_EQ(stale.age, 130.0);
  EXPECT_EQ(stale.staleness, 50.0);

  // A copy reflecting t = 220 saw every update: fresh despite its age.
  const ClientReadSample fresh =
      classify_client_read(250.0, /*hit=*/true, 220.0, &truth);
  EXPECT_TRUE(fresh.fresh);
  EXPECT_EQ(fresh.age, 30.0);
  EXPECT_EQ(fresh.staleness, 0.0);
}

TEST(ClientMetrics, RecordAndMergeAccounting) {
  VersionedObject truth("/x", 0.0);
  truth.apply_update(100.0);

  ClientMetrics a;
  record_client_read(a, classify_client_read(150.0, true, 120.0, &truth));
  record_client_read(a, classify_client_read(150.0, true, 50.0, &truth));
  record_client_read(a, classify_client_read(150.0, false, 0.0, nullptr));
  EXPECT_EQ(a.requests, 3u);
  EXPECT_EQ(a.hits, 2u);
  EXPECT_EQ(a.misses, 1u);
  EXPECT_EQ(a.fresh, 1u);
  EXPECT_EQ(a.stale, 1u);
  EXPECT_EQ(a.age.count(), 2u);        // hits only
  EXPECT_EQ(a.staleness.count(), 1u);  // stale hits only
  EXPECT_EQ(a.staleness.max(), 50.0);  // 150 - (first unseen at 100)

  ClientMetrics b;
  record_client_read(b, classify_client_read(200.0, true, 120.0, &truth));
  ClientMetrics merged = a;
  merged.merge(b);
  EXPECT_EQ(merged.requests, 4u);
  EXPECT_EQ(merged.hits, 3u);
  EXPECT_EQ(merged.age.count(), 3u);
  EXPECT_EQ(merged.age.max(), 100.0);  // a's read of the t=50 copy at t=150
  EXPECT_EQ(merged.hit_rate(), 0.75);

  // The merge is a pure function of its inputs: repeating it bitwise-
  // reproduces every double (the fleet layers rely on fixed merge order).
  ClientMetrics again = a;
  again.merge(b);
  EXPECT_EQ(merged.age.mean(), again.age.mean());
  EXPECT_EQ(merged.age.variance(), again.age.variance());
}

TEST(ClientMetrics, MergedRecordStreamIsCanonicallyOrdered) {
  std::vector<ClientRequestRecord> p1(3), p0(2);
  p0[0].time = 1.0;
  p0[1].time = 5.0;
  p1[0].time = 1.0;  // ties with p0[0]: proxy breaks the tie
  p1[1].time = 2.0;
  p1[2].time = 2.0;  // ties within one stream: in-stream position holds
  for (auto& r : p0) r.proxy = 0;
  for (auto& r : p1) r.proxy = 1;
  p1[1].client = 7;
  p1[2].client = 8;

  // Streams tagged out of order on purpose: the merge must not care.
  const std::vector<ClientRequestRecord> merged =
      merge_client_records({{1, &p1}, {0, &p0}});
  ASSERT_EQ(merged.size(), 5u);
  EXPECT_EQ(merged[0].proxy, 0u);  // t=1 proxy 0
  EXPECT_EQ(merged[1].proxy, 1u);  // t=1 proxy 1
  EXPECT_EQ(merged[2].client, 7u);  // t=2 first in stream
  EXPECT_EQ(merged[3].client, 8u);
  EXPECT_EQ(merged[4].time, 5.0);
}

// ---- the relay-snapshot staleness contract ---------------------------------

// A relay-delivered copy must be aged from the *sender's* poll instant,
// never from the delivery time: delivery latency is not freshness.
TEST(ClientTraffic, RelayedCopyKeepsRelayedSnapshot) {
  Simulator sim;
  OriginServer origin(sim);
  // The object modifies every 7 s, so every 10 s poll returns a fresh
  // body (200) and advances the cached snapshot (a 304 validation
  // deliberately keeps the body's original snapshot).
  std::vector<TimePoint> updates;
  for (TimePoint t = 7.0; t < 100.0; t += 7.0) updates.push_back(t);
  const UpdateTrace trace("/page", std::move(updates), 100.0);
  origin.attach_update_trace("/page", trace);

  FleetConfig config;
  config.proxies = 2;
  config.cooperative_push = true;
  config.relay_latency = 5.0;
  config.engine.rtt = 0.0;
  config.engine.loss_probability = 0.0;
  ProxyFleet fleet(sim, origin, config);
  // Proxy 0 polls every 10 s; proxy 1 effectively never, so after its
  // initial fetch every refresh it sees arrives over the relay channel.
  fleet.add_temporal_object(0, "/page",
                            std::make_unique<FixedPollPolicy>(10.0));
  fleet.add_temporal_object(1, "/page",
                            std::make_unique<FixedPollPolicy>(1e9));
  fleet.start();
  sim.run_until(99.0);
  ASSERT_GT(fleet.relays_applied(), 0u);

  const ObjectId id = origin.uri_table().find("/page");
  // Proxy 0's last own poll fired at t = 90 (rtt 0); the relay reached
  // proxy 1 at t = 95.  Reading at t = 99 must report the copy as
  // reflecting server state 90 — 9 s old, not 4.
  const PollingEngine::ClientRead own = fleet.proxy(0).serve_client_read(id);
  ASSERT_TRUE(own.hit);
  EXPECT_EQ(own.snapshot, 90.0);
  const PollingEngine::ClientRead relayed =
      fleet.proxy(1).serve_client_read(id);
  ASSERT_TRUE(relayed.hit);
  EXPECT_EQ(relayed.snapshot, 90.0);
  EXPECT_EQ(relayed.visible, 95.0);
}

// ---- fleet traffic over a ProxyFleet ---------------------------------------

TEST(ClientTraffic, DrivesRequestsAndRecordsAtEveryProxy) {
  Simulator sim;
  OriginServer origin(sim);
  origin.add_object("/a");
  origin.add_object("/b");

  FleetConfig config;
  config.proxies = 3;
  config.cooperative_push = false;
  config.engine.loss_probability = 0.0;
  ClientTrafficConfig traffic;
  traffic.request_rate = 2.0;
  traffic.clients_per_proxy = 1'000'000;
  traffic.record_requests = true;
  config.client_traffic = traffic;
  ProxyFleet fleet(sim, origin, config);
  fleet.add_temporal_object_everywhere(
      "/a", [] { return std::make_unique<FixedPollPolicy>(30.0); });
  fleet.start();
  sim.run_until(500.0);

  ASSERT_TRUE(fleet.has_client_traffic());
  FleetClientTraffic& traffic_layer = fleet.client_traffic();
  EXPECT_EQ(traffic_layer.size(), 3u);
  // The universe is every hosted object: /a is cached, /b never is.
  EXPECT_EQ(traffic_layer.objects().size(), 2u);

  const ClientMetrics merged = fleet.merged_client_metrics();
  EXPECT_GT(merged.requests, 0u);
  EXPECT_EQ(merged.hits + merged.misses, merged.requests);
  EXPECT_GT(merged.hits, 0u);    // /a reads are hits
  // /b is tracked by no proxy and demand_fill is off by default, so /b
  // reads are plain misses (untracked ids never fill even with it on).
  EXPECT_GT(merged.misses, 0u);
  EXPECT_EQ(merged.fresh + merged.stale, merged.hits);

  std::uint64_t sum = 0;
  for (std::size_t p = 0; p < fleet.size(); ++p) {
    const ClientMetrics& per = traffic_layer.metrics(p);
    EXPECT_GT(per.requests, 0u) << "proxy " << p;
    sum += per.requests;
    // Streams are independent: distinct proxies draw distinct request
    // sequences (seeded seed + global id).
    const auto& records = traffic_layer.records(p);
    ASSERT_EQ(records.size(), per.requests);
    for (std::size_t i = 1; i < records.size(); ++i) {
      EXPECT_LE(records[i - 1].time, records[i].time);
    }
    for (const ClientRequestRecord& record : records) {
      EXPECT_EQ(record.proxy, p);
      // Deterministic global client ids partition by proxy population.
      EXPECT_GE(record.client, p * traffic.clients_per_proxy);
      EXPECT_LT(record.client, (p + 1) * traffic.clients_per_proxy);
    }
  }
  EXPECT_EQ(sum, merged.requests);
  EXPECT_EQ(traffic_layer.requests_issued(), merged.requests);

  const std::vector<ClientRequestRecord> all = fleet.merged_client_records();
  EXPECT_EQ(all.size(), merged.requests);
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LE(all[i - 1].time, all[i].time);
  }
}

// A flat profile at rate r issues ~r per second; the diurnal thinning
// must keep the long-run mean near the configured rate, not the peak.
TEST(ClientTraffic, DiurnalThinningPreservesMeanRate) {
  Simulator sim;
  OriginServer origin(sim);
  origin.add_object("/a");

  FleetConfig config;
  config.proxies = 1;
  config.cooperative_push = false;
  ClientTrafficConfig traffic;
  traffic.request_rate = 5.0;
  traffic.profile = DiurnalProfile::newsroom();
  config.client_traffic = traffic;
  ProxyFleet fleet(sim, origin, config);
  fleet.add_temporal_object_everywhere(
      "/a", [] { return std::make_unique<FixedPollPolicy>(600.0); });
  fleet.start();
  const Duration day = 24.0 * 3600.0;
  sim.run_until(day);

  const double observed =
      static_cast<double>(fleet.merged_client_metrics().requests) / day;
  EXPECT_NEAR(observed, traffic.request_rate, 0.25 * traffic.request_rate);
}

// ---- read transactions over hand-built logs --------------------------------

TEST(ReadTransactions, SpreadAndViolationsFromServeSeries) {
  // Proxy 0 serves a copy reflecting t = 10 (visible from t = 11);
  // proxy 1 one reflecting t = 100 (visible from t = 101).  Every
  // transaction sampled after both are visible sees spread 90 exactly.
  PollLog log0, log1;
  PollRecord r0;
  r0.uri = "/a";
  r0.snapshot_time = 10.0;
  r0.complete_time = 11.0;
  log0.append(r0);
  PollRecord r1;
  r1.uri = "/a";
  r1.snapshot_time = 100.0;
  r1.complete_time = 101.0;
  log1.append(r1);

  ReadTransactionConfig config;
  config.rate = 1.0;
  config.objects = 2;
  config.seed = 5;

  config.delta = 50.0;  // tighter than the spread: every complete violates
  const TransactionStats tight =
      evaluate_read_transactions({&log0, &log1}, config, 1000.0);
  EXPECT_GT(tight.transactions, 0u);
  EXPECT_EQ(tight.complete + tight.incomplete, tight.transactions);
  EXPECT_GT(tight.complete, 0u);
  EXPECT_EQ(tight.violations, tight.complete);
  EXPECT_EQ(tight.spread.min(), 90.0);
  EXPECT_EQ(tight.spread.max(), 90.0);
  EXPECT_EQ(tight.violation_rate(), 1.0);

  config.delta = 200.0;  // looser than the spread: none violate
  const TransactionStats loose =
      evaluate_read_transactions({&log0, &log1}, config, 1000.0);
  EXPECT_EQ(loose.violations, 0u);
  // Same seed, same logs: the sampling is deterministic.
  EXPECT_EQ(loose.transactions, tight.transactions);
  EXPECT_EQ(loose.complete, tight.complete);
}

TEST(ReadTransactions, ZeroRateDisablesSampling) {
  PollLog log;
  const TransactionStats stats =
      evaluate_read_transactions({&log}, ReadTransactionConfig{}, 100.0);
  EXPECT_EQ(stats.transactions, 0u);
}

// A retention-truncated log has lost serve-series prefix records; silently
// evaluating it would mis-score transactions sampled before the window, so
// the evaluation fails fast instead.
TEST(ReadTransactions, TruncatedLogFailsFast) {
  PollLog log;
  log.set_retention_window(1);
  PollRecord r;
  r.uri = "/a";
  r.snapshot_time = 10.0;
  r.complete_time = 11.0;
  log.append(r);
  r.snapshot_time = 20.0;
  r.complete_time = 21.0;
  log.append(r);
  log.compact();
  ASSERT_GT(log.dropped_records(), 0u);

  ReadTransactionConfig config;
  config.rate = 1.0;
  config.objects = 1;
  EXPECT_THROW(evaluate_read_transactions({&log}, config, 100.0),
               CheckFailure);
}

// ---- demand fills (EngineConfig::demand_fill) ------------------------------

// The engine keys loss decisions by (seed, object id, per-object attempt
// counter) through the stateless hash_bernoulli, so a test can *choose* the
// loss outcomes of consecutive attempts by scanning seeds at runtime.
std::uint64_t find_loss_seed(ObjectId id, double p,
                             std::initializer_list<bool> lost_pattern) {
  for (std::uint64_t seed = 0;; ++seed) {
    std::uint64_t draw = 0;
    bool match = true;
    for (const bool lost : lost_pattern) {
      if (hash_bernoulli(seed, id, draw++, p) != lost) {
        match = false;
        break;
      }
    }
    if (match) return seed;
  }
}

// Tentpole pin: a miss on a tracked-but-uncached object fetches through to
// the origin, the filled copy enters the cache, and the read reports the
// client-observed fill latency.  The filled read is still a miss.
TEST(ClientDemandFill, MissFetchesThroughToOrigin) {
  Simulator sim;
  OriginServer origin(sim);
  origin.add_object("/a");
  const ObjectId id = origin.uri_table().find("/a");

  EngineConfig config;
  config.rtt = 0.25;
  config.loss_probability = 0.5;
  config.retry_delay = 1e6;  // pending retries never land in-horizon
  config.demand_fill = true;
  // Initial fetch (draw 0) lost, demand fill (draw 1) delivered.
  config.seed = find_loss_seed(id, 0.5, {true, false});
  PollingEngine engine(sim, origin, config);
  engine.add_temporal_object("/a", std::make_unique<FixedPollPolicy>(1e9));
  engine.start();
  sim.run_until(10.0);
  ASSERT_EQ(engine.cache().find(id), nullptr);  // initial fetch was lost

  const PollingEngine::ClientRead read = engine.serve_client_read(id);
  EXPECT_FALSE(read.hit);  // the client paid the origin round-trip
  EXPECT_EQ(read.miss_reason,
            PollingEngine::ClientRead::MissReason::kUncached);
  EXPECT_TRUE(read.filled);
  EXPECT_EQ(read.fill_latency, 0.25);
  EXPECT_EQ(read.snapshot, 10.0);
  EXPECT_EQ(read.visible, 10.25);

  // The fill went through the shared poll pipeline: it is an origin poll
  // with cause kClientMiss, and the origin-load invariant
  // origin_polls == policy polls + demand fills holds on the log.
  EXPECT_EQ(engine.demand_fills(), 1u);
  const PollCauseCounts counts = count_by_cause(engine.poll_log());
  EXPECT_EQ(counts.client_miss, 1u);
  EXPECT_EQ(counts.policy_polls(), 0u);
  EXPECT_EQ(counts.initial, 0u);  // lost
  EXPECT_EQ(counts.failed, 1u);
  EXPECT_EQ(counts.total_refreshes(),
            counts.policy_polls() + engine.demand_fills());

  // The filled copy is cached: the next read hits without a new fetch.
  const PollingEngine::ClientRead again = engine.serve_client_read(id);
  EXPECT_TRUE(again.hit);
  EXPECT_FALSE(again.filled);
  EXPECT_EQ(again.snapshot, 10.0);
  EXPECT_EQ(engine.demand_fills(), 1u);
}

// Loss injection applies to fills like any poll: a lost fill leaves the
// miss unfilled and the pending retry refreshes the copy as kRetry.
TEST(ClientDemandFill, LostFillStaysMissAndRetriesLikeAnyPoll) {
  Simulator sim;
  OriginServer origin(sim);
  origin.add_object("/a");
  const ObjectId id = origin.uri_table().find("/a");

  EngineConfig config;
  config.rtt = 0.0;
  config.loss_probability = 0.5;
  config.retry_delay = 8.0;
  config.demand_fill = true;
  // Initial (draw 0) lost, fill (draw 1) lost, first retry (draw 2) ok.
  config.seed = find_loss_seed(id, 0.5, {true, true, false});
  PollingEngine engine(sim, origin, config);
  engine.add_temporal_object("/a", std::make_unique<FixedPollPolicy>(1e9));
  engine.start();
  sim.run_until(3.0);

  const PollingEngine::ClientRead read = engine.serve_client_read(id);
  EXPECT_FALSE(read.hit);
  EXPECT_FALSE(read.filled);
  EXPECT_EQ(read.miss_reason,
            PollingEngine::ClientRead::MissReason::kUncached);
  EXPECT_EQ(read.fill_latency, 0.0);
  EXPECT_EQ(engine.demand_fills(), 0u);
  EXPECT_EQ(engine.failed_polls(), 2u);  // lost initial + lost fill

  // The retry armed by the lost initial fires at t = 8 and succeeds.
  sim.run_until(9.0);
  const PollCauseCounts counts = count_by_cause(engine.poll_log());
  EXPECT_EQ(counts.retry, 1u);
  EXPECT_EQ(counts.client_miss, 0u);
  const PollingEngine::ClientRead later = engine.serve_client_read(id);
  EXPECT_TRUE(later.hit);
  EXPECT_EQ(later.snapshot, 8.0);
}

// Untracked ids never fill: they have no policy, no trace registration and
// no relay eligibility, so a fill would bypass the consistency machinery.
TEST(ClientDemandFill, UntrackedIdNeverFills) {
  Simulator sim;
  OriginServer origin(sim);
  origin.add_object("/a");
  origin.add_object("/b");

  EngineConfig config;
  config.loss_probability = 0.0;
  config.demand_fill = true;
  PollingEngine engine(sim, origin, config);
  engine.add_temporal_object("/a", std::make_unique<FixedPollPolicy>(1e9));
  engine.start();
  sim.run_until(5.0);

  const ObjectId id_b = origin.uri_table().find("/b");
  const PollingEngine::ClientRead read = engine.serve_client_read(id_b);
  EXPECT_FALSE(read.hit);
  EXPECT_FALSE(read.filled);
  EXPECT_EQ(read.miss_reason,
            PollingEngine::ClientRead::MissReason::kUntracked);
  EXPECT_EQ(engine.demand_fills(), 0u);
  EXPECT_EQ(engine.polls_performed("/b"), 0u);
}

// With demand_fill unset (the paper's model) a miss is only recorded, but
// the split miss reason still distinguishes untracked from uncached.
TEST(ClientDemandFill, DisabledMissOnlyRecordsReason) {
  Simulator sim;
  OriginServer origin(sim);
  origin.add_object("/a");
  const ObjectId id = origin.uri_table().find("/a");

  EngineConfig config;
  config.loss_probability = 0.5;
  config.retry_delay = 1e6;
  config.seed = find_loss_seed(id, 0.5, {true});  // initial fetch lost
  PollingEngine engine(sim, origin, config);
  engine.add_temporal_object("/a", std::make_unique<FixedPollPolicy>(1e9));
  engine.start();
  sim.run_until(5.0);

  const PollingEngine::ClientRead read = engine.serve_client_read(id);
  EXPECT_FALSE(read.hit);
  EXPECT_FALSE(read.filled);
  EXPECT_EQ(read.miss_reason,
            PollingEngine::ClientRead::MissReason::kUncached);
  EXPECT_EQ(engine.demand_fills(), 0u);
}

TEST(ClientMetrics, DemandFillAccountingAndMerge) {
  ClientReadSample filled;
  filled.filled = true;
  filled.fill_latency = 0.3;
  ClientMetrics a;
  record_client_read(a, filled);
  record_client_read(a, ClientReadSample{});  // plain unfilled miss
  EXPECT_EQ(a.requests, 2u);
  EXPECT_EQ(a.misses, 2u);  // a filled read is still a miss
  EXPECT_EQ(a.demand_fills, 1u);
  EXPECT_EQ(a.fill_latency.count(), 1u);
  EXPECT_EQ(a.fill_latency.max(), 0.3);

  ClientMetrics b;
  ClientReadSample other_fill;
  other_fill.filled = true;
  other_fill.fill_latency = 0.5;
  record_client_read(b, other_fill);
  a.merge(b);
  EXPECT_EQ(a.demand_fills, 2u);
  EXPECT_EQ(a.fill_latency.count(), 2u);
  EXPECT_EQ(a.fill_latency.max(), 0.5);
  EXPECT_EQ(a.hits + a.misses, a.requests);
}

// ---- popularity sampling mass ----------------------------------------------

TEST(ClientTraffic, ZeroWeightPopularityEntriesAreDropped) {
  Simulator sim;
  OriginServer origin(sim);
  origin.add_object("/a");
  origin.add_object("/b");
  const ObjectId id_a = origin.uri_table().find("/a");
  const ObjectId id_b = origin.uri_table().find("/b");

  FleetConfig config;
  config.proxies = 1;
  config.cooperative_push = false;
  ClientTrafficConfig traffic;
  traffic.request_rate = 5.0;
  traffic.record_requests = true;
  // A zero-weight entry has no sampling mass: it must be dropped from the
  // universe, not silently redirected onto by a clamped boundary draw.
  traffic.popularity = {{id_a, 1.0}, {id_b, 0.0}};
  config.client_traffic = traffic;
  ProxyFleet fleet(sim, origin, config);
  fleet.add_temporal_object_everywhere(
      "/a", [] { return std::make_unique<FixedPollPolicy>(30.0); });
  fleet.start();
  sim.run_until(200.0);

  FleetClientTraffic& layer = fleet.client_traffic();
  ASSERT_EQ(layer.objects().size(), 1u);
  EXPECT_EQ(layer.objects()[0], id_a);
  const auto& records = layer.records(0);
  ASSERT_GT(records.size(), 0u);
  for (const ClientRequestRecord& record : records) {
    EXPECT_EQ(record.object, id_a);
  }
}

TEST(ClientTraffic, AllZeroWeightPopularityFailsFastAtStart) {
  Simulator sim;
  OriginServer origin(sim);
  origin.add_object("/a");

  FleetConfig config;
  config.proxies = 1;
  ClientTrafficConfig traffic;
  traffic.popularity = {{origin.uri_table().find("/a"), 0.0}};
  config.client_traffic = traffic;
  ProxyFleet fleet(sim, origin, config);
  fleet.add_temporal_object_everywhere(
      "/a", [] { return std::make_unique<FixedPollPolicy>(10.0); });
  EXPECT_THROW(fleet.start(), CheckFailure);
}

// ---- per-client session locality -------------------------------------------

// With session_locality = 1 every request lands in the client's fixed
// working set (session_objects hash-derived ids): one client's request
// stream touches at most that many distinct objects over any horizon.
TEST(ClientTraffic, SessionLocalityPinsPerClientWorkingSet) {
  const auto distinct_objects = [](double locality) {
    Simulator sim;
    OriginServer origin(sim);
    for (int i = 0; i < 24; ++i) {
      origin.add_object("/o" + std::to_string(i));
    }
    FleetConfig config;
    config.proxies = 1;
    config.cooperative_push = false;
    ClientTrafficConfig traffic;
    traffic.request_rate = 20.0;
    traffic.clients_per_proxy = 1;
    traffic.session_locality = locality;
    traffic.session_objects = 3;
    traffic.record_requests = true;
    config.client_traffic = traffic;
    ProxyFleet fleet(sim, origin, config);
    fleet.add_temporal_object_everywhere(
        "/o0", [] { return std::make_unique<FixedPollPolicy>(1e9); });
    fleet.start();
    sim.run_until(200.0);
    std::set<ObjectId> seen;
    for (const ClientRequestRecord& record :
         fleet.client_traffic().records(0)) {
      seen.insert(record.object);
    }
    return seen.size();
  };

  EXPECT_LE(distinct_objects(1.0), 3u);
  EXPECT_GE(distinct_objects(1.0), 2u);
  // Without locality the same Zipf stream roams the whole universe.
  EXPECT_GT(distinct_objects(0.0), 3u);
}

TEST(ClientTraffic, InvalidSessionLocalityFailsFastAtConstruction) {
  Simulator sim;
  OriginServer origin(sim);
  origin.add_object("/a");
  FleetConfig config;
  config.proxies = 1;
  ClientTrafficConfig traffic;
  traffic.session_locality = 1.5;
  config.client_traffic = traffic;
  EXPECT_THROW(ProxyFleet(sim, origin, config), CheckFailure);
}

// ---- fail-fast contracts ---------------------------------------------------

TEST(ClientTraffic, UnknownPopularityIdFailsFastAtStart) {
  Simulator sim;
  OriginServer origin(sim);
  origin.add_object("/real");

  FleetConfig config;
  config.proxies = 1;
  config.cooperative_push = false;
  ClientTrafficConfig traffic;
  traffic.popularity = {{static_cast<ObjectId>(4242), 1.0}};
  config.client_traffic = traffic;
  ProxyFleet fleet(sim, origin, config);
  fleet.add_temporal_object_everywhere(
      "/real", [] { return std::make_unique<FixedPollPolicy>(10.0); });
  EXPECT_THROW(fleet.start(), CheckFailure);
}

TEST(ClientTraffic, NonPositiveRateFailsFastAtConstruction) {
  Simulator sim;
  OriginServer origin(sim);
  origin.add_object("/real");
  FleetConfig config;
  config.proxies = 1;
  ClientTrafficConfig traffic;
  traffic.request_rate = 0.0;
  config.client_traffic = traffic;
  EXPECT_THROW(ProxyFleet(sim, origin, config), CheckFailure);
}

}  // namespace
}  // namespace broadway

// Tests for the table renderer, flag parser, check macros and logging.
#include <gtest/gtest.h>

#include <sstream>

#include "util/check.h"
#include "util/flags.h"
#include "util/log.h"
#include "util/table.h"

namespace broadway {
namespace {

TEST(Check, ThrowsWithContext) {
  try {
    BROADWAY_CHECK_MSG(1 == 2, "extra " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("extra 42"), std::string::npos);
    EXPECT_NE(what.find("test_util_misc.cpp"), std::string::npos);
  }
}

TEST(Check, PassesSilently) {
  EXPECT_NO_THROW(BROADWAY_CHECK(2 + 2 == 4));
}

TEST(TextTable, AlignsColumns) {
  TextTable table;
  table.set_header({"name", "value"});
  table.add_row({"alpha", "1.5"});
  table.add_row({"b", "10.25"});
  std::ostringstream os;
  table.print(os);
  const std::string text = os.str();
  // Header present, rule under it, numeric column right-aligned.
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
  EXPECT_NE(text.find("  1.5"), std::string::npos);
  EXPECT_NE(text.find("10.25"), std::string::npos);
}

TEST(TextTable, HandlesRaggedRows) {
  TextTable table;
  table.add_row({"a", "b", "c"});
  table.add_row({"only"});
  std::ostringstream os;
  EXPECT_NO_THROW(table.print(os));
  EXPECT_EQ(table.rows(), 2u);
}

TEST(TextTable, NumericHelper) {
  TextTable table;
  table.add_row_numeric({1.23456, 2.0}, 2);
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("1.23"), std::string::npos);
  EXPECT_NE(os.str().find("2.00"), std::string::npos);
}

TEST(Fmt, Precision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt_percent(0.973, 1), "97.3%");
}

TEST(Flags, ParsesAllKinds) {
  Flags flags;
  double d = 0.0;
  long long i = 0;
  bool b = false;
  std::string s;
  flags.add_double("delta", &d, "tolerance");
  flags.add_int("count", &i, "how many");
  flags.add_bool("verbose", &b, "chatty");
  flags.add_string("name", &s, "label");

  const char* argv[] = {"prog", "--delta=2.5", "--count", "7", "--verbose",
                        "--name=cnn"};
  EXPECT_TRUE(flags.parse(6, const_cast<char**>(argv)));
  EXPECT_DOUBLE_EQ(d, 2.5);
  EXPECT_EQ(i, 7);
  EXPECT_TRUE(b);
  EXPECT_EQ(s, "cnn");
}

TEST(Flags, RejectsUnknownFlag) {
  Flags flags;
  double d = 0.0;
  flags.add_double("delta", &d, "tolerance");
  const char* argv[] = {"prog", "--typo=1"};
  EXPECT_FALSE(flags.parse(2, const_cast<char**>(argv)));
}

TEST(Flags, RejectsBadValue) {
  Flags flags;
  long long i = 0;
  flags.add_int("count", &i, "how many");
  const char* argv[] = {"prog", "--count=abc"};
  EXPECT_FALSE(flags.parse(2, const_cast<char**>(argv)));
}

TEST(Flags, HelpReturnsFalse) {
  Flags flags;
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(flags.parse(2, const_cast<char**>(argv)));
}

TEST(Flags, BoolExplicitFalse) {
  Flags flags;
  bool b = true;
  flags.add_bool("verbose", &b, "chatty");
  const char* argv[] = {"prog", "--verbose=false"};
  EXPECT_TRUE(flags.parse(2, const_cast<char**>(argv)));
  EXPECT_FALSE(b);
}

TEST(Log, LevelFilters) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Below threshold: the stream expression must not even be evaluated.
  int evaluations = 0;
  BROADWAY_INFO("side effect " << ++evaluations);
  EXPECT_EQ(evaluations, 0);
  set_log_level(saved);
}

}  // namespace
}  // namespace broadway

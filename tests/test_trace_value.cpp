#include "trace/value_trace.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace broadway {
namespace {

ValueTrace simple_trace() {
  // 100 initially; 105 at t=10; 95 at t=20; 102 at t=40.  Duration 100.
  return ValueTrace("v", 100.0,
                    {{10.0, 105.0}, {20.0, 95.0}, {40.0, 102.0}}, 100.0);
}

TEST(ValueTrace, ValueAtFollowsSteps) {
  const ValueTrace trace = simple_trace();
  EXPECT_DOUBLE_EQ(trace.value_at(0.0), 100.0);
  EXPECT_DOUBLE_EQ(trace.value_at(9.999), 100.0);
  EXPECT_DOUBLE_EQ(trace.value_at(10.0), 105.0);  // step is inclusive
  EXPECT_DOUBLE_EQ(trace.value_at(25.0), 95.0);
  EXPECT_DOUBLE_EQ(trace.value_at(99.0), 102.0);
}

TEST(ValueTrace, VersionCounting) {
  const ValueTrace trace = simple_trace();
  EXPECT_EQ(trace.version_at(0.0), 0u);
  EXPECT_EQ(trace.version_at(10.0), 1u);
  EXPECT_EQ(trace.version_at(39.0), 2u);
  EXPECT_EQ(trace.version_at(40.0), 3u);
}

TEST(ValueTrace, MinMaxIncludeInitialValue) {
  const ValueTrace trace = simple_trace();
  EXPECT_DOUBLE_EQ(trace.min_value(), 95.0);
  EXPECT_DOUBLE_EQ(trace.max_value(), 105.0);
  const ValueTrace flat("flat", 50.0, {}, 10.0);
  EXPECT_DOUBLE_EQ(flat.min_value(), 50.0);
  EXPECT_DOUBLE_EQ(flat.max_value(), 50.0);
}

TEST(ValueTrace, MaxAbsDeviationOverWindow) {
  const ValueTrace trace = simple_trace();
  // Reference 100, window (0, 15]: values 100 then 105 -> worst 5.
  EXPECT_DOUBLE_EQ(trace.max_abs_deviation(0.0, 15.0, 100.0), 5.0);
  // Window (0, 25]: also sees 95 -> worst 5 either way.
  EXPECT_DOUBLE_EQ(trace.max_abs_deviation(0.0, 25.0, 100.0), 5.0);
  // Window (0, 45] vs ref 95: sees 105 -> worst 10.
  EXPECT_DOUBLE_EQ(trace.max_abs_deviation(0.0, 45.0, 95.0), 10.0);
  // Empty window.
  EXPECT_DOUBLE_EQ(trace.max_abs_deviation(5.0, 5.0, 0.0), 0.0);
}

TEST(ValueTrace, TimeDeviationAtLeast) {
  const ValueTrace trace = simple_trace();
  // Ref 100, bound 5: |100-100|=0 on (0,10); |105-100|=5 on [10,20);
  // |95-100|=5 on [20,40); |102-100|=2 after.  Window (0, 100]:
  // qualifying spans are [10,20) and [20,40) -> 30 total (>= is inclusive).
  EXPECT_DOUBLE_EQ(
      trace.time_deviation_at_least(0.0, 100.0, 100.0, 5.0), 30.0);
  // Tighter bound 6: nothing qualifies.
  EXPECT_DOUBLE_EQ(
      trace.time_deviation_at_least(0.0, 100.0, 100.0, 6.0), 0.0);
  // Bound 0 qualifies everywhere.
  EXPECT_DOUBLE_EQ(
      trace.time_deviation_at_least(0.0, 100.0, 100.0, 0.0), 100.0);
}

TEST(ValueTrace, TimeDeviationPartialWindow) {
  const ValueTrace trace = simple_trace();
  // Window (15, 30] vs ref 100, bound 5: [15,20) at 105 and [20,30] at 95,
  // all qualifying -> 15.
  EXPECT_DOUBLE_EQ(
      trace.time_deviation_at_least(15.0, 30.0, 100.0, 5.0), 15.0);
}

TEST(ValueTrace, UpdateTimes) {
  const ValueTrace trace = simple_trace();
  EXPECT_EQ(trace.update_times(),
            (std::vector<TimePoint>{10.0, 20.0, 40.0}));
}

TEST(ValueTrace, ConstructorValidation) {
  EXPECT_THROW(ValueTrace("bad", 1.0, {{5.0, 1.0}, {5.0, 2.0}}, 10.0),
               CheckFailure);  // non-increasing times
  EXPECT_THROW(ValueTrace("bad", 1.0, {{15.0, 1.0}}, 10.0),
               CheckFailure);  // outside duration
  EXPECT_THROW(ValueTrace("bad", 1.0, {}, 0.0), CheckFailure);
}

TEST(ValueTrace, RepeatedEqualValuesAllowed) {
  // A tick that leaves the price unchanged still counts as an update.
  const ValueTrace trace("flat-ticks", 10.0, {{1.0, 10.0}, {2.0, 10.0}},
                         5.0);
  EXPECT_EQ(trace.count(), 2u);
  EXPECT_DOUBLE_EQ(trace.value_at(3.0), 10.0);
}

}  // namespace
}  // namespace broadway

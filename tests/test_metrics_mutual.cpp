// Ground-truth Mt (Eq. 4) evaluation on constructed scenarios.
#include "metrics/mutual_fidelity.h"

#include <gtest/gtest.h>

#include "trace/update_trace.h"
#include "util/check.h"

namespace broadway {
namespace {

std::vector<PollInstant> at(std::initializer_list<TimePoint> times) {
  std::vector<PollInstant> out;
  for (TimePoint t : times) out.push_back(PollInstant{t, t});
  return out;
}

TEST(MutualTemporal, StaticObjectsAlwaysConsistent) {
  const UpdateTrace a("a", {}, 100.0);
  const UpdateTrace b("b", {}, 100.0);
  const auto report = evaluate_mutual_temporal(a, at({0.0}), b, at({0.0}),
                                               0.0, 100.0);
  EXPECT_EQ(report.violations, 0u);
  EXPECT_DOUBLE_EQ(report.fidelity_violations(), 1.0);
  EXPECT_DOUBLE_EQ(report.fidelity_time(), 1.0);
}

TEST(MutualTemporal, InPhasePollingIsConsistent) {
  // Both objects update at 50; both are refreshed at 60: the held
  // versions' validity intervals ([50, inf) each) overlap.
  const UpdateTrace a("a", {50.0}, 200.0);
  const UpdateTrace b("b", {50.0}, 200.0);
  const auto report = evaluate_mutual_temporal(
      a, at({0.0, 60.0}), b, at({0.0, 60.0}), 0.0, 200.0);
  EXPECT_EQ(report.violations, 0u);
  EXPECT_DOUBLE_EQ(report.out_sync_time, 0.0);
}

TEST(MutualTemporal, PhaseLagCreatesViolation) {
  // Both update at 50.  a refreshes at 55, b not until 150.  Between 55
  // and 150 the proxy holds a@[50,inf) and b@[0,50): the intervals touch
  // (gap 0)... so use a second update of b to separate them.
  // b updates at 50 and a holds [50, inf); b's held version is [0, 50).
  // gap([50,inf),[0,50)) = 0 — touching intervals are consistent (the
  // versions coexisted at instant 50).  Push b's validity earlier:
  const UpdateTrace a("a", {50.0}, 200.0);
  const UpdateTrace b("b", {20.0, 50.0}, 200.0);
  // b fetched at 30 holds [20, 50); a fetched at 55 holds [50, inf).
  // gap = 0 (touching).  δ=0 still consistent.  But b fetched at 10 holds
  // [0, 20): gap to [50, inf) is 30 > δ.
  const auto report = evaluate_mutual_temporal(
      a, at({0.0, 55.0}), b, at({0.0, 10.0}), 0.0, 200.0);
  // From 55 (a's refresh) to 200, a holds [50,inf), b holds [0,20):
  // violated for 145 s; before 55, a holds [0,50) overlapping b's [0,20).
  EXPECT_EQ(report.violations, 1u);
  EXPECT_DOUBLE_EQ(report.out_sync_time, 145.0);
  EXPECT_EQ(report.polls, 4u);
}

TEST(MutualTemporal, DeltaToleranceForgivesSmallGaps) {
  const UpdateTrace a("a", {50.0}, 200.0);
  const UpdateTrace b("b", {20.0, 50.0}, 200.0);
  // Same as above: gap is 30 (between validity end 20 and begin 50).
  const auto strict = evaluate_mutual_temporal(
      a, at({0.0, 55.0}), b, at({0.0, 10.0}), 29.0, 200.0);
  EXPECT_EQ(strict.violations, 1u);
  const auto tolerant = evaluate_mutual_temporal(
      a, at({0.0, 55.0}), b, at({0.0, 10.0}), 30.0, 200.0);
  EXPECT_EQ(tolerant.violations, 0u);  // gap <= δ is acceptable
}

TEST(MutualTemporal, RefreshEndsViolation) {
  const UpdateTrace a("a", {50.0}, 200.0);
  const UpdateTrace b("b", {20.0, 50.0}, 200.0);
  // b is re-fetched at 100, picking up version [50, inf): consistent again.
  const auto report = evaluate_mutual_temporal(
      a, at({0.0, 55.0}), b, at({0.0, 10.0, 100.0}), 0.0, 200.0);
  EXPECT_EQ(report.violations, 1u);
  EXPECT_DOUBLE_EQ(report.out_sync_time, 45.0);  // 55 -> 100
}

TEST(MutualTemporal, ViolationEventsCountTransitions) {
  // Two separate violation episodes -> two events.
  const UpdateTrace a("a", {50.0, 120.0}, 200.0);
  const UpdateTrace b("b", {20.0, 50.0, 120.0}, 200.0);
  const auto report = evaluate_mutual_temporal(
      a, at({0.0, 55.0, 125.0}), b, at({0.0, 10.0, 100.0}), 0.0, 200.0);
  // Episode 1: 55..100 (a@[50,120) vs b@[0,20)).
  // At 100 b picks up [50,120): consistent.  At 125 a picks up [120,inf)
  // while b still holds [50,120): touching, gap 0 -> consistent.
  EXPECT_EQ(report.violations, 1u);
  EXPECT_DOUBLE_EQ(report.out_sync_time, 45.0);
}

TEST(MutualTemporal, SecondEpisodeCountedSeparately) {
  const UpdateTrace a("a", {50.0, 120.0}, 300.0);
  const UpdateTrace b("b", {20.0, 50.0, 80.0, 120.0}, 300.0);
  // a: holds [0,50) until 55, then [50,120) until 125, then [120,inf).
  // b: holds [0,20) until 100 -> episode 1 (55..100, gap 30).
  //    at 100 picks up [80, 120) -> consistent with a@[50,120).
  //    a at 125 picks up [120,inf): gap to b's [80,120) is 0 (touching).
  //    b at 150 picks up [120, inf): consistent.
  //    Then b at 250 re-fetches (still [120,inf)): consistent.
  const auto report = evaluate_mutual_temporal(
      a, at({0.0, 55.0, 125.0}), b, at({0.0, 10.0, 100.0, 150.0, 250.0}),
      0.0, 300.0);
  EXPECT_EQ(report.violations, 1u);
  EXPECT_DOUBLE_EQ(report.out_sync_time, 45.0);

  // Now delay b's pickup of version [120,...) and shrink its validity by
  // adding an update at 130 to b: a@[120,inf) vs b@[80,120) stays gap 0,
  // but b@[20,50) would gap.  Use a fresh scenario for clarity:
  const UpdateTrace c("c", {100.0}, 300.0);
  const UpdateTrace d("d", {40.0, 100.0, 101.0}, 300.0);
  // d fetched at 50 holds [40,100); c fetched at 105 holds [100,inf):
  // touching -> consistent.  d fetched at 150 holds [101,inf) ->
  // consistent.  No violations here; instead make d stale twice:
  const auto two_episodes = evaluate_mutual_temporal(
      c, at({0.0, 105.0, 205.0}), d, at({0.0, 30.0, 140.0, 145.0}), 0.0,
      300.0);
  // d@[0,40) vs c@[0,100): overlap until c refreshes at 105.
  // 105..140: c@[100,inf) vs d@[0,40): gap 60 -> violation episode 1.
  // 140: d picks up [101, inf) (state at 140): consistent.
  // 205: c re-fetch, same version: consistent.
  EXPECT_EQ(two_episodes.violations, 1u);
  EXPECT_DOUBLE_EQ(two_episodes.out_sync_time, 35.0);
}

TEST(MutualTemporal, Validation) {
  const UpdateTrace a("a", {}, 100.0);
  const UpdateTrace b("b", {}, 100.0);
  EXPECT_THROW(
      evaluate_mutual_temporal(a, {}, b, at({0.0}), 0.0, 100.0),
      CheckFailure);
  EXPECT_THROW(
      evaluate_mutual_temporal(a, at({0.0}), b, at({0.0}), -1.0, 100.0),
      CheckFailure);
}

}  // namespace
}  // namespace broadway

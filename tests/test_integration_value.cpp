// End-to-end Δv / Mv experiments (Fig. 7 / Fig. 8 shapes).
#include <gtest/gtest.h>

#include "harness/experiments.h"
#include "trace/paper_workloads.h"

namespace broadway {
namespace {

MutualValueRunConfig mutual_config(MutualValueApproach approach,
                                   double delta) {
  MutualValueRunConfig config;
  config.delta = delta;
  config.approach = approach;
  return config;
}

TEST(IntegrationValue, IndividualPollsShrinkWithDelta) {
  const ValueTrace trace = make_att_stock_trace();
  ValueRunConfig tight;
  tight.delta = 0.05;
  ValueRunConfig loose;
  loose.delta = 0.5;
  const auto many = run_value_individual(trace, tight);
  const auto few = run_value_individual(trace, loose);
  EXPECT_GT(many.polls, few.polls);
}

TEST(IntegrationValue, IndividualFidelityGrowsWithDelta) {
  const ValueTrace trace = make_att_stock_trace();
  ValueRunConfig tight;
  tight.delta = 0.05;
  ValueRunConfig loose;
  loose.delta = 0.5;
  const auto strict = run_value_individual(trace, tight);
  const auto tolerant = run_value_individual(trace, loose);
  EXPECT_GE(tolerant.fidelity.fidelity_time() + 1e-9,
            strict.fidelity.fidelity_time());
  EXPECT_GT(tolerant.fidelity.fidelity_time(), 0.9);
}

TEST(IntegrationValue, VolatileStockNeedsMorePolls) {
  ValueRunConfig config;
  config.delta = 0.25;
  const auto att = run_value_individual(make_att_stock_trace(), config);
  const auto yahoo = run_value_individual(make_yahoo_stock_trace(), config);
  EXPECT_GT(yahoo.polls, att.polls);
}

TEST(IntegrationValue, MutualPollsShrinkWithDelta) {
  // Fig. 7(a): both approaches poll less as δ grows.
  const ValueTrace a = make_att_stock_trace();
  const ValueTrace b = make_yahoo_stock_trace();
  for (MutualValueApproach approach : {MutualValueApproach::kAdaptive,
                                       MutualValueApproach::kPartitioned}) {
    const auto tight =
        run_mutual_value(a, b, mutual_config(approach, 0.25));
    const auto loose =
        run_mutual_value(a, b, mutual_config(approach, 5.0));
    EXPECT_GT(tight.polls, loose.polls)
        << (approach == MutualValueApproach::kAdaptive ? "adaptive"
                                                       : "partitioned");
  }
}

TEST(IntegrationValue, MutualFidelityGrowsWithDelta) {
  // Fig. 7(b).
  const ValueTrace a = make_att_stock_trace();
  const ValueTrace b = make_yahoo_stock_trace();
  for (MutualValueApproach approach : {MutualValueApproach::kAdaptive,
                                       MutualValueApproach::kPartitioned}) {
    const auto tight =
        run_mutual_value(a, b, mutual_config(approach, 0.25));
    const auto loose =
        run_mutual_value(a, b, mutual_config(approach, 5.0));
    EXPECT_GE(loose.mutual.fidelity_time() + 1e-9,
              tight.mutual.fidelity_time());
  }
}

TEST(IntegrationValue, PartitionedBeatsAdaptiveOnFidelity) {
  // Fig. 7(b): "the partitioned approach can offer higher fidelities than
  // the adaptive TTR approach" — at the cost of more polls (Fig. 7(a)).
  const ValueTrace a = make_att_stock_trace();
  const ValueTrace b = make_yahoo_stock_trace();
  for (double delta : {0.6, 1.0, 2.0}) {
    const auto adaptive = run_mutual_value(
        a, b, mutual_config(MutualValueApproach::kAdaptive, delta));
    const auto partitioned = run_mutual_value(
        a, b, mutual_config(MutualValueApproach::kPartitioned, delta));
    EXPECT_GE(partitioned.mutual.fidelity_time() + 0.02,
              adaptive.mutual.fidelity_time())
        << "delta=" << delta;
    EXPECT_GE(partitioned.polls + 50, adaptive.polls) << "delta=" << delta;
  }
}

TEST(IntegrationValue, SeriesCollectedForFig8) {
  const ValueTrace a = make_att_stock_trace();
  const ValueTrace b = make_yahoo_stock_trace();
  MutualValueRunConfig config =
      mutual_config(MutualValueApproach::kPartitioned, 0.6);
  config.collect_series = true;
  const auto result = run_mutual_value(a, b, config);
  ASSERT_GT(result.series.size(), 100u);
  // The proxy-side series must track the server-side series: the mean
  // absolute divergence stays within a few δ.
  double total = 0.0;
  for (const auto& sample : result.series) {
    total += std::abs(sample.f_server - sample.f_proxy);
  }
  EXPECT_LT(total / static_cast<double>(result.series.size()), 3.0 * 0.6);
}

TEST(IntegrationValue, PartitionedTracksServerMoreTightly) {
  // Fig. 8: the partitioned proxy-side f hugs the server-side f more
  // closely than the adaptive approach's.
  const ValueTrace a = make_att_stock_trace();
  const ValueTrace b = make_yahoo_stock_trace();
  auto run_with_series = [&](MutualValueApproach approach) {
    MutualValueRunConfig config = mutual_config(approach, 0.6);
    config.collect_series = true;
    return run_mutual_value(a, b, config);
  };
  const auto adaptive = run_with_series(MutualValueApproach::kAdaptive);
  const auto partitioned =
      run_with_series(MutualValueApproach::kPartitioned);
  auto mean_gap = [](const MutualValueRunResult& result) {
    double total = 0.0;
    for (const auto& sample : result.series) {
      total += std::abs(sample.f_server - sample.f_proxy);
    }
    return total / static_cast<double>(result.series.size());
  };
  EXPECT_LT(mean_gap(partitioned), mean_gap(adaptive) + 0.05);
}

}  // namespace
}  // namespace broadway

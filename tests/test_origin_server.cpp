#include "origin/origin_server.h"

#include <gtest/gtest.h>

#include "http/extensions.h"
#include "sim/simulator.h"
#include "trace/update_trace.h"
#include "trace/value_trace.h"

namespace broadway {
namespace {

TEST(OriginServer, UnknownUriIs404) {
  Simulator sim;
  OriginServer origin(sim);
  Request req;
  req.uri = "/missing";
  EXPECT_EQ(origin.handle(req).status, StatusCode::kNotFound);
}

TEST(OriginServer, UnconditionalGetReturnsFullResponse) {
  Simulator sim;
  OriginServer origin(sim);
  origin.add_object("/page");
  Request req;
  req.uri = "/page";
  const Response resp = origin.handle(req);
  EXPECT_TRUE(resp.ok());
  EXPECT_FALSE(resp.body.empty());
  EXPECT_TRUE(get_last_modified(resp.headers).has_value());
}

TEST(OriginServer, ConditionalGetFreshIs304) {
  Simulator sim;
  OriginServer origin(sim);
  origin.add_object("/page");
  sim.run_until(100.0);
  const Response resp =
      origin.handle(Request::conditional_get("/page", 50.0));
  EXPECT_TRUE(resp.not_modified());
  EXPECT_TRUE(resp.body.empty());
  EXPECT_EQ(origin.responses_304(), 1u);
}

TEST(OriginServer, ConditionalGetStaleIs200) {
  Simulator sim;
  OriginServer origin(sim);
  VersionedObject& object = origin.add_object("/page");
  sim.run_until(100.0);
  object.apply_update(100.0);
  const Response resp =
      origin.handle(Request::conditional_get("/page", 50.0));
  EXPECT_TRUE(resp.ok());
  EXPECT_DOUBLE_EQ(*get_last_modified(resp.headers), 100.0);
  EXPECT_EQ(origin.responses_200(), 1u);
}

TEST(OriginServer, HistoryListsUpdatesSinceValidator) {
  Simulator sim;
  OriginServer origin(sim);
  VersionedObject& object = origin.add_object("/page");
  sim.run_until(400.0);
  for (double t : {100.0, 200.0, 300.0}) object.apply_update(t);
  const Response resp =
      origin.handle(Request::conditional_get("/page", 150.0));
  const auto history = get_modification_history(resp.headers);
  ASSERT_TRUE(history.has_value());
  ASSERT_EQ(history->size(), 2u);  // 200, 300
  EXPECT_NEAR((*history)[0], 200.0, 1e-3);
  EXPECT_NEAR((*history)[1], 300.0, 1e-3);
}

TEST(OriginServer, HistoryLimitKeepsNewest) {
  Simulator sim;
  OriginServer::Config config;
  config.history_enabled = true;
  config.history_limit = 2;
  OriginServer origin(sim, config);
  VersionedObject& object = origin.add_object("/page");
  sim.run_until(500.0);
  for (double t : {100.0, 200.0, 300.0, 400.0}) object.apply_update(t);
  const Response resp =
      origin.handle(Request::conditional_get("/page", 50.0));
  const auto history = get_modification_history(resp.headers);
  ASSERT_TRUE(history.has_value());
  ASSERT_EQ(history->size(), 2u);
  EXPECT_NEAR((*history)[0], 300.0, 1e-3);
  EXPECT_NEAR((*history)[1], 400.0, 1e-3);
}

TEST(OriginServer, HistoryCanBeDisabled) {
  Simulator sim;
  OriginServer::Config config;
  config.history_enabled = false;
  OriginServer origin(sim, config);
  VersionedObject& object = origin.add_object("/page");
  sim.run_until(200.0);
  object.apply_update(100.0);
  const Response resp =
      origin.handle(Request::conditional_get("/page", 50.0));
  EXPECT_TRUE(resp.ok());
  EXPECT_FALSE(resp.headers.has(kHdrModificationHistory));
}

TEST(OriginServer, ValueObjectsCarryValueHeader) {
  Simulator sim;
  OriginServer origin(sim);
  origin.add_value_object("/stock", 36.10);
  Request req;
  req.uri = "/stock";
  const Response resp = origin.handle(req);
  EXPECT_DOUBLE_EQ(*get_object_value(resp.headers), 36.10);
}

TEST(OriginServer, AttachUpdateTraceDrivesUpdates) {
  Simulator sim;
  OriginServer origin(sim);
  const UpdateTrace trace("/page", {10.0, 20.0, 30.0}, 100.0);
  origin.attach_update_trace("/page", trace);
  sim.run_until(15.0);
  EXPECT_EQ(origin.store().at("/page").version(), 1u);
  sim.run_until(100.0);
  EXPECT_EQ(origin.store().at("/page").version(), 3u);
  EXPECT_DOUBLE_EQ(origin.store().at("/page").last_modified(), 30.0);
}

TEST(OriginServer, AttachValueTraceDrivesValues) {
  Simulator sim;
  OriginServer origin(sim);
  const ValueTrace trace("/stock", 100.0, {{10.0, 101.0}, {20.0, 99.5}},
                         100.0);
  origin.attach_value_trace("/stock", trace);
  EXPECT_DOUBLE_EQ(*origin.store().at("/stock").value(), 100.0);
  sim.run_until(12.0);
  EXPECT_DOUBLE_EQ(*origin.store().at("/stock").value(), 101.0);
  sim.run_until(50.0);
  EXPECT_DOUBLE_EQ(*origin.store().at("/stock").value(), 99.5);
}

TEST(OriginServer, RequestCountersTrack) {
  Simulator sim;
  OriginServer origin(sim);
  origin.add_object("/page");
  Request req;
  req.uri = "/page";
  origin.handle(req);
  origin.handle(Request::conditional_get("/page", 1000.0));
  Request missing;
  missing.uri = "/nope";
  origin.handle(missing);
  EXPECT_EQ(origin.requests_served(), 3u);
  EXPECT_EQ(origin.responses_200(), 1u);
  EXPECT_EQ(origin.responses_304(), 1u);
}

TEST(OriginServer, HeadReturnsHeadersWithoutBody) {
  Simulator sim;
  OriginServer origin(sim);
  origin.add_object("/page");
  Request get;
  get.uri = "/page";
  const Response full = origin.handle(get);
  Request head = get;
  head.method = Method::kHead;
  const Response bare = origin.handle(head);
  EXPECT_TRUE(bare.ok());
  EXPECT_TRUE(bare.body.empty());
  // Content-Length still describes the GET body (RFC 2616 §9.4).
  EXPECT_EQ(*bare.headers.get("Content-Length"),
            std::to_string(full.body.size()));
  EXPECT_EQ(*bare.headers.get(kHdrLastModified),
            *full.headers.get(kHdrLastModified));
}

TEST(OriginServer, BodyChangesAcrossVersions) {
  Simulator sim;
  OriginServer origin(sim);
  VersionedObject& object = origin.add_object("/page");
  Request req;
  req.uri = "/page";
  const std::string v0 = origin.handle(req).body;
  sim.run_until(10.0);
  object.apply_update(10.0);
  const std::string v1 = origin.handle(req).body;
  EXPECT_NE(v0, v1);
}

}  // namespace
}  // namespace broadway

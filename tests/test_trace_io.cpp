#include "trace/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>

#include "trace/generators.h"
#include "trace/stock.h"
#include "util/rng.h"

namespace broadway {
namespace {

TEST(TraceIo, UpdateTraceRoundTrip) {
  const UpdateTrace original("news/page", {1.5, 2.25, 100.125}, 3600.0,
                             13.5);
  const UpdateTrace parsed =
      parse_update_trace(serialize_update_trace(original));
  EXPECT_EQ(parsed.name(), original.name());
  EXPECT_DOUBLE_EQ(parsed.duration(), original.duration());
  EXPECT_DOUBLE_EQ(parsed.start_hour(), original.start_hour());
  EXPECT_EQ(parsed.updates(), original.updates());
}

TEST(TraceIo, UpdateTraceRoundTripPreservesFullPrecision) {
  Rng rng(3);
  std::vector<TimePoint> times = generate_poisson(rng, 0.01, 50000.0);
  const UpdateTrace original("precise", times, 50000.0);
  const UpdateTrace parsed =
      parse_update_trace(serialize_update_trace(original));
  ASSERT_EQ(parsed.count(), original.count());
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_DOUBLE_EQ(parsed.updates()[i], times[i]);
  }
}

TEST(TraceIo, ValueTraceRoundTrip) {
  const ValueTrace original(
      "stock/T", 36.10, {{1.0, 36.15}, {7.5, 36.05}}, 10800.0);
  const ValueTrace parsed =
      parse_value_trace(serialize_value_trace(original));
  EXPECT_EQ(parsed.name(), original.name());
  EXPECT_DOUBLE_EQ(parsed.initial_value(), original.initial_value());
  EXPECT_DOUBLE_EQ(parsed.duration(), original.duration());
  ASSERT_EQ(parsed.count(), 2u);
  EXPECT_DOUBLE_EQ(parsed.steps()[1].value, 36.05);
}

TEST(TraceIo, RejectsWrongKind) {
  const UpdateTrace update("u", {1.0}, 10.0);
  EXPECT_THROW(parse_value_trace(serialize_update_trace(update)),
               std::runtime_error);
  const ValueTrace value("v", 1.0, {}, 10.0);
  EXPECT_THROW(parse_update_trace(serialize_value_trace(value)),
               std::runtime_error);
}

TEST(TraceIo, RejectsMalformed) {
  EXPECT_THROW(parse_update_trace(""), std::runtime_error);
  EXPECT_THROW(parse_update_trace("no header\n1.0\n"), std::runtime_error);
  EXPECT_THROW(parse_update_trace("# broadway-update-trace,x,100\n"),
               std::runtime_error);  // missing field
  EXPECT_THROW(
      parse_update_trace("# broadway-update-trace,x,100,0\nnot-a-number\n"),
      std::runtime_error);
  EXPECT_THROW(
      parse_value_trace("# broadway-value-trace,x,100,1\n1.0\n"),
      std::runtime_error);  // step needs two fields
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/broadway_trace_io.csv";
  const UpdateTrace original("file-test", {5.0, 6.0}, 100.0, 2.0);
  save_update_trace(original, path);
  const UpdateTrace loaded = load_update_trace(path);
  EXPECT_EQ(loaded.updates(), original.updates());
  std::remove(path.c_str());
}

TEST(TraceIo, LoadMissingFileThrows) {
  EXPECT_THROW(load_update_trace("/nonexistent/path/trace.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace broadway

#include "util/strings.h"

#include <gtest/gtest.h>

namespace broadway {
namespace {

TEST(Split, KeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Split, SingleField) {
  const auto parts = split("alone", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "alone");
}

TEST(Split, EmptyInputGivesOneEmptyField) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(SplitTrimmed, DropsEmptyAndTrims) {
  const auto parts = split_trimmed(" a , , b ,", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
}

TEST(Trim, RemovesBothEnds) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(ToLower, AsciiOnly) {
  EXPECT_EQ(to_lower("Last-Modified"), "last-modified");
  EXPECT_EQ(to_lower("ABC123xyz"), "abc123xyz");
}

TEST(Join, WithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(IEquals, CaseInsensitive) {
  EXPECT_TRUE(iequals("Content-Length", "content-length"));
  EXPECT_TRUE(iequals("", ""));
  EXPECT_FALSE(iequals("abc", "abcd"));
  EXPECT_FALSE(iequals("abc", "abd"));
}

TEST(ParseDouble, Strict) {
  double v = 0.0;
  EXPECT_TRUE(parse_double("3.25", v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(parse_double("  -1e3 ", v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
  EXPECT_FALSE(parse_double("", v));
  EXPECT_FALSE(parse_double("12x", v));
  EXPECT_FALSE(parse_double("x12", v));
}

TEST(ParseInt64, Strict) {
  long long v = 0;
  EXPECT_TRUE(parse_int64("42", v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(parse_int64(" -7 ", v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(parse_int64("4.2", v));
  EXPECT_FALSE(parse_int64("", v));
  EXPECT_FALSE(parse_int64("abc", v));
}

}  // namespace
}  // namespace broadway

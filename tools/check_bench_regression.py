#!/usr/bin/env python3
"""Gate the engine-sweep benchmarks against a committed baseline.

Usage:
    check_bench_regression.py CURRENT.json BASELINE.json [--threshold 0.25]
        [--update-baseline] [--allow-missing-baseline]

Both files are google-benchmark ``--benchmark_format=json`` output (the
canonical BENCH_results.json).  Raw nanoseconds are not comparable across
machines, so each gated benchmark is first *normalised* by a calibration
benchmark from the same run (the simulator event-queue bench): the gate
compares

    ratio = time(gated bench) / time(calibration bench)

between the two files and fails when any gated ratio worsened by more than
``--threshold`` (default 25%).  That catches "the poll pipeline got slower
relative to the machine" without false-failing on a slower CI runner.

The gate additionally fails when any ``BM_*`` benchmark in the current
results has no baseline entry at all: a perf PR that adds benches must add
calibration-coherent baseline entries with them, or the new benches would
never be gated (``--allow-missing-baseline`` disables the coverage check
for local experiments).
"""

import argparse
import json
import sys

# Pinned to the binary-heap backend in bench_micro so its meaning never
# shifts when the default scheduler changes.
CALIBRATION = "BM_SimulatorScheduleRun/10000"
GATED = [
    "BM_EngineTemporalSweep/64",
    "BM_EngineTemporalSweep/256",
    "BM_FleetRelayStorm/4",
    # The same topology with the fault layer on (loss + jitter + retries +
    # crash windows): the delta against BM_FleetRelayStorm is the price of
    # the counter-keyed draws and the per-attempt ledger.
    "BM_FleetFaultSweep/proxies:4",
    # Raw scheduler sweeps, both backends: the heap entry guards the
    # reference backend, the calendar entry the default one.
    "BM_SchedulerSweep/0/4096",
    "BM_SchedulerSweep/1/4096",
    # Coordinator dispatch: fan-out isolation at 8 and 64 groups plus the
    # end-to-end grouped sweep.  Baselines were measured on the legacy
    # string-keyed broadcast path, so these also record the routing win.
    "BM_CoordinatorFanout/8",
    "BM_CoordinatorFanout/64",
    "BM_GroupedTemporalSweep",
    # Sharded fleet sweep (8 proxies x 1024 objects) across the worker
    # pool.  These measure wall-clock (UseRealTime — workers do the
    # simulating, the main thread just barriers), hence the /real_time
    # suffix.  The threads:1 entry guards the sharded machinery's
    # single-thread overhead; higher counts guard the parallel path.
    "BM_ShardedFleetSweep/threads:1/real_time",
    "BM_ShardedFleetSweep/threads:2/real_time",
    "BM_ShardedFleetSweep/threads:4/real_time",
    "BM_ShardedFleetSweep/threads:8/real_time",
    # Window machinery in isolation (zero-relay topology): adaptive:0 is
    # the per-window barrier+exchange cost paid horizon/latency times,
    # adaptive:1 the collapsed single-window run.  Gating both keeps the
    # window loop from quietly fattening and the adaptive edge from
    # quietly losing its jump.
    "BM_ShardedWindowOverhead/adaptive:0/real_time",
    "BM_ShardedWindowOverhead/adaptive:1/real_time",
    # Sparse-relay sweep under object partitioning: the fixed-vs-adaptive
    # pairs record the adaptive-window win where cross-shard traffic is
    # rare, at inline (threads:1) and pooled (threads:4) widths.
    "BM_ShardedSparseRelaySweep/threads:1/adaptive:0/real_time",
    "BM_ShardedSparseRelaySweep/threads:1/adaptive:1/real_time",
    "BM_ShardedSparseRelaySweep/threads:4/adaptive:0/real_time",
    "BM_ShardedSparseRelaySweep/threads:4/adaptive:1/real_time",
    # Client traffic over a cooperative fleet: per-request cost of the
    # thinning + Zipf sampling + cache-read + classification pipeline.
    "BM_ClientFleetSweep/proxies:2",
    "BM_ClientFleetSweep/proxies:8",
    # Same pipeline with demand fills on under loss: the delta against
    # BM_ClientFleetSweep is the price of the kClientMiss fill path
    # (unconditional fetch + relay fan-out) plus session-locality
    # sampling.
    "BM_ClientDemandFillSweep/proxies:2",
    "BM_ClientDemandFillSweep/proxies:8",
]

UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_times(path):
    with open(path) as f:
        data = json.load(f)
    times = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        times[bench["name"]] = (
            float(bench["real_time"]) * UNIT_NS[bench.get("time_unit", "ns")]
        )
    return times


def update_baseline(args, current, baseline):
    """Append calibration-coherent entries for benches the baseline lacks.

    Raw times from this machine are not comparable with the baseline's
    (different host, build, load), but calibration-normalised *ratios*
    are — that is the whole premise of the gate.  So each new entry is
    the current measurement rescaled by baseline_cal / current_cal:
    the entry a same-speed run on the baseline machine would have
    produced.  Existing entries are left untouched; the committed
    history stays a trajectory, not a moving target.
    """
    scale = baseline[CALIBRATION] / current[CALIBRATION]
    with open(args.current) as f:
        current_data = json.load(f)
    with open(args.baseline) as f:
        baseline_data = json.load(f)
    added = []
    for bench in current_data.get("benchmarks", []):
        name = bench.get("name", "")
        if not name.startswith("BM_") or name in baseline:
            continue
        if bench.get("run_type") == "aggregate":
            continue
        entry = dict(bench)
        for field in ("real_time", "cpu_time"):
            if field in entry:
                entry[field] = float(entry[field]) * scale
        baseline_data["benchmarks"].append(entry)
        added.append(name)
    if not added:
        print("update-baseline: nothing to add (full coverage)")
        return
    with open(args.baseline, "w") as f:
        json.dump(baseline_data, f, indent=2)
        f.write("\n")
    print(f"update-baseline: added {len(added)} entries to {args.baseline}")
    for name in added:
        print(f"  {name}  (x{scale:.3f} calibration rescale)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current")
    parser.add_argument("baseline")
    parser.add_argument("--threshold", type=float, default=0.25)
    parser.add_argument(
        "--allow-missing-baseline",
        action="store_true",
        help="skip the baseline-coverage check for newly added benches",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="append calibration-coherent baseline entries for benchmarks "
        "present in CURRENT but absent from BASELINE (existing entries are "
        "never rewritten)",
    )
    args = parser.parse_args()

    current = load_times(args.current)
    baseline = load_times(args.baseline)

    if args.update_baseline:
        if CALIBRATION not in current or CALIBRATION not in baseline:
            print(f"FAIL: {CALIBRATION} required in both files to rescale")
            return 1
        update_baseline(args, current, baseline)
        baseline = load_times(args.baseline)

    for name in [CALIBRATION] + GATED:
        for label, times in (("current", current), ("baseline", baseline)):
            if name not in times:
                print(f"FAIL: {name} missing from {label} results")
                return 1

    # Every benchmark in the current run must have a baseline entry, or a
    # newly added bench would silently escape the gate forever.
    if not args.allow_missing_baseline:
        uncovered = sorted(
            name
            for name in current
            if name.startswith("BM_") and name not in baseline
        )
        if uncovered:
            print(
                "FAIL: benchmarks missing a bench/BENCH_baseline.json "
                "entry (add calibration-coherent entries for them):"
            )
            for name in uncovered:
                print(f"  {name}")
            return 1

    failed = False
    improvements = 0
    print(f"calibration: {CALIBRATION}")
    width = max(len("benchmark"), max(len(name) for name in GATED))
    print(
        f"{'benchmark':<{width}} {'baseline':>10} {'current':>10} {'change':>8}"
    )
    for name in GATED:
        base_ratio = baseline[name] / baseline[CALIBRATION]
        cur_ratio = current[name] / current[CALIBRATION]
        change = cur_ratio / base_ratio - 1.0
        verdict = ""
        if change > args.threshold:
            verdict = "  <-- REGRESSION"
            failed = True
        elif change < -args.threshold:
            # Improvements are reported symmetrically: a big delta in
            # either direction is a perf event worth a second look (and a
            # baseline refresh, so the gain becomes the new floor).
            verdict = f"  <-- improvement ({1.0 / (1.0 + change):.2f}x)"
            improvements += 1
        print(
            f"{name:<{width}} {base_ratio:>10.3f} {cur_ratio:>10.3f} "
            f"{change:>+7.1%}{verdict}"
        )
    if improvements:
        print(
            f"\n{improvements} bench(es) improved >{args.threshold:.0%}; "
            "consider refreshing bench/BENCH_baseline.json to lock in the "
            "gain."
        )

    if failed:
        print(
            f"\nFAIL: engine benches regressed >{args.threshold:.0%} vs "
            f"{args.baseline}.\nIf the slowdown is intended, regenerate the "
            "baseline: ./build/bench_micro --benchmark_format=json "
            "--benchmark_min_time=1 > bench/BENCH_baseline.json"
        )
        return 1
    print("\nOK: engine benches within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())

// Fig. 1 reproduction: the two scenarios that violate Δt-consistency
// guarantees, shown through the violation detector's verdicts.
//  (a) a single update more than Δ before the current poll;
//  (b) multiple updates where only the *first* since the previous poll
//      breaches the bound (invisible to stock HTTP).
#include <iostream>

#include "consistency/violation.h"
#include "harness/reporting.h"
#include "util/table.h"

namespace {

broadway::TemporalPollObservation make_obs(
    double prev, double now, std::vector<double> history, bool with_history) {
  broadway::TemporalPollObservation obs;
  obs.previous_poll_time = prev;
  obs.poll_time = now;
  obs.modified = !history.empty();
  if (!history.empty()) obs.last_modified = history.back();
  if (with_history) obs.history = history;
  return obs;
}

}  // namespace

int main() {
  using namespace broadway;
  print_banner(std::cout,
               "Figure 1: Scenarios that violate consistency guarantees "
               "(Delta = 60 s, polls at t=0 and t=100)");

  TextTable table;
  table.set_header({"Scenario", "Updates", "Detector", "Violation?",
                    "First update est.", "Out-of-sync"});

  struct Case {
    const char* label;
    std::vector<double> updates;
  };
  const Case cases[] = {
      {"Fig 1(a): single old update", {20.0}},
      {"Fig 1(b): multi-update, last is recent", {20.0, 90.0}},
      {"no violation: single recent update", {70.0}},
  };

  for (const Case& scenario : cases) {
    for (bool with_history : {true, false}) {
      ViolationDetector detector(60.0,
                                 with_history
                                     ? ViolationDetection::kExactHistory
                                     : ViolationDetection::kLastModifiedOnly);
      const auto verdict = detector.examine(
          make_obs(0.0, 100.0, scenario.updates, with_history));
      std::string updates;
      for (double u : scenario.updates) {
        if (!updates.empty()) updates += ", ";
        updates += fmt(u, 0);
      }
      table.add_row({scenario.label, updates,
                     with_history ? "history extension" : "Last-Modified only",
                     verdict.violated ? "YES" : "no",
                     verdict.first_update ? fmt(*verdict.first_update, 0)
                                          : "-",
                     fmt(verdict.out_sync, 0) + " s"});
    }
  }
  table.print(std::cout);

  std::cout
      << "\nThe Fig. 1(b) violation is detected only with the paper's "
         "proposed modification-history\nextension (section 5.1): stock "
         "HTTP reveals only the most recent change, which looks fresh.\n";
  return 0;
}

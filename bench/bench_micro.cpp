// Micro-benchmarks of the library's hot paths (google-benchmark):
// policy updates, event queue, evaluators, codec, trace queries, and
// end-to-end engine sweeps (the BENCH_results.json perf trajectory; see
// README "Performance").
#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "client/client_traffic.h"
#include "consistency/limd.h"
#include "consistency/partitioned.h"
#include "consistency/triggered.h"
#include "consistency/value_ttr.h"
#include "fleet/proxy_fleet.h"
#include "fleet/sharded_fleet.h"
#include "http/codec.h"
#include "http/extensions.h"
#include "metrics/fidelity.h"
#include "origin/origin_server.h"
#include "proxy/poll_log.h"
#include "proxy/polling_engine.h"
#include "sim/simulator.h"
#include "trace/diurnal.h"
#include "trace/paper_workloads.h"
#include "trace/update_trace.h"
#include "util/rng.h"

namespace {

using namespace broadway;

void BM_LimdNextTtr(benchmark::State& state) {
  LimdPolicy policy(LimdPolicy::Config::paper_defaults(600.0));
  TimePoint t = 0.0;
  TimePoint update = 300.0;
  for (auto _ : state) {
    TemporalPollObservation obs;
    obs.previous_poll_time = t;
    t += policy.current_ttr();
    obs.poll_time = t;
    obs.modified = (static_cast<int>(t) % 3) == 0;
    if (obs.modified) {
      update = std::min(t - 1.0, update + 700.0);
      obs.last_modified = update;
      obs.history = {update};
    }
    benchmark::DoNotOptimize(policy.next_ttr(obs));
  }
}
BENCHMARK(BM_LimdNextTtr);

void BM_AdaptiveValueNextTtr(benchmark::State& state) {
  AdaptiveValueTtrPolicy::Config config;
  config.delta = 0.5;
  config.bounds = {1.0, 300.0};
  AdaptiveValueTtrPolicy policy(config);
  TimePoint t = 0.0;
  double value = 100.0;
  Rng rng(5);
  for (auto _ : state) {
    ValuePollObservation obs;
    obs.previous_poll_time = t;
    t += policy.current_ttr();
    obs.poll_time = t;
    obs.previous_value = value;
    value += rng.uniform(-0.2, 0.2);
    obs.value = value;
    benchmark::DoNotOptimize(policy.next_ttr(obs));
  }
}
BENCHMARK(BM_AdaptiveValueNextTtr);

void BM_ApportionTolerances(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> rates(n);
  std::vector<double> coefficients(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    rates[i] = 0.01 * static_cast<double>(i + 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        apportion_tolerances(1.0, rates, coefficients));
  }
}
BENCHMARK(BM_ApportionTolerances)->Arg(2)->Arg(8)->Arg(64);

Simulator::Config scheduler_config(SchedulerBackend backend) {
  Simulator::Config config;
  config.scheduler = backend;
  return config;
}

// The CI regression gate's calibration benchmark: pinned to the binary
// heap so its meaning never shifts when the default backend (or the
// BROADWAY_SCHEDULER variable) changes — the gate compares engine-bench /
// calibration ratios across machines and baselines.
void BM_SimulatorScheduleRun(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator sim(scheduler_config(SchedulerBackend::kBinaryHeap));
    for (int i = 0; i < events; ++i) {
      sim.schedule_at(((i * 7919) % events) + 1.0, [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.executed());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_SimulatorScheduleRun)->Arg(1000)->Arg(10000);

// Head-to-head scheduler sweep: N self-rescheduling timers with irregular
// periods — the shape of a fleet poll schedule, where the event at the
// queue head constantly re-enqueues itself somewhere in the near future.
// range(0): 0 = binary heap, 1 = calendar; range(1): timer count.
void BM_SchedulerSweep(benchmark::State& state) {
  const Simulator::Config config = scheduler_config(
      state.range(0) == 0 ? SchedulerBackend::kBinaryHeap
                          : SchedulerBackend::kCalendar);
  const int timers = static_cast<int>(state.range(1));
  constexpr TimePoint kHorizon = 2000.0;
  std::int64_t events = 0;
  for (auto _ : state) {
    Simulator sim(config);
    std::vector<std::unique_ptr<PeriodicTask>> tasks;
    tasks.reserve(static_cast<std::size_t>(timers));
    for (int i = 0; i < timers; ++i) {
      std::uint64_t x = 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(i + 1);
      tasks.push_back(std::make_unique<PeriodicTask>(sim, [x]() mutable {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        // 1–100 s periods, deterministic per timer; the modulus also
        // manufactures same-instant collisions across timers.
        return 1.0 + static_cast<double>(x % 991) / 10.0;
      }));
      tasks.back()->start(static_cast<double>(i % 101) * 0.5);
    }
    sim.run_until(kHorizon);
    events += static_cast<std::int64_t>(sim.executed());
    benchmark::DoNotOptimize(sim.now());
  }
  state.SetItemsProcessed(events);
}
BENCHMARK(BM_SchedulerSweep)
    ->Args({0, 256})
    ->Args({1, 256})
    ->Args({0, 4096})
    ->Args({1, 4096})
    ->Unit(benchmark::kMillisecond);

// The per-poll observation-history build + restriction, exactly as
// TemporalObject::on_response performs it.  Arg = wire history length:
// 4 stays inside the SmallVector's inline capacity (no allocation),
// 32 spills to the heap.
void BM_ObservationHistory(benchmark::State& state) {
  const std::size_t entries = static_cast<std::size_t>(state.range(0));
  std::vector<TimePoint> wire(entries);
  for (std::size_t i = 0; i < entries; ++i) {
    wire[i] = static_cast<double>(i + 1) * 10.0;
  }
  Response response;
  response.status = StatusCode::kOk;
  response.meta.active = true;
  response.meta.set_history_view(wire.data(), wire.size());
  const TimePoint previous = 15.0;  // restriction drops the first entry
  for (auto _ : state) {
    TemporalPollObservation obs;
    wire_modification_history(response, obs.history);
    const auto first = std::upper_bound(obs.history.begin(),
                                        obs.history.end(), previous);
    obs.history.erase(obs.history.begin(), first);
    benchmark::DoNotOptimize(obs.history.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(entries));
}
BENCHMARK(BM_ObservationHistory)->Arg(4)->Arg(32);

void BM_HttpCodecRoundTrip(benchmark::State& state) {
  Request req = Request::conditional_get("/news/breaking/story.html",
                                         123456.789);
  set_delta_tolerance(req.headers, 600.0);
  set_group(req.headers, "breaking-news", 300.0);
  for (auto _ : state) {
    const std::string wire = serialize(req);
    benchmark::DoNotOptimize(parse_request(wire));
  }
}
BENCHMARK(BM_HttpCodecRoundTrip);

void BM_TraceVersionQuery(benchmark::State& state) {
  const UpdateTrace trace = make_guardian_trace();
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trace.version_at(rng.uniform(0.0, trace.duration())));
  }
}
BENCHMARK(BM_TraceVersionQuery);

void BM_TemporalFidelityEvaluation(benchmark::State& state) {
  const UpdateTrace trace = make_cnn_fn_trace();
  std::vector<PollInstant> polls;
  for (TimePoint t = 0.0; t < trace.duration(); t += 600.0) {
    polls.push_back(PollInstant{t, t});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        evaluate_temporal_fidelity(trace, polls, 600.0, trace.duration()));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(polls.size()));
}
BENCHMARK(BM_TemporalFidelityEvaluation);

// A poll log as a harness sweep produces it: `objects` uris polled
// round-robin, 200 records each.
PollLog make_poll_log(std::size_t objects, std::vector<std::string>& uris) {
  PollLog log;
  uris.clear();
  for (std::size_t i = 0; i < objects; ++i) {
    uris.push_back("/object/" + std::to_string(i));
  }
  TimePoint t = 0.0;
  for (std::size_t round = 0; round < 200; ++round) {
    for (const std::string& uri : uris) {
      PollRecord record;
      record.snapshot_time = t;
      record.complete_time = t;
      record.uri = uri;
      record.cause = round == 0 ? PollCause::kInitial : PollCause::kScheduled;
      record.modified = (round % 3) == 0;
      log.append(std::move(record));
      t += 1.0;
    }
  }
  return log;
}

// Per-object metric extraction through the per-uri index (what the engine
// accessors and the PollLog successful_polls overload do).
void BM_PollLogIndexedQueries(benchmark::State& state) {
  std::vector<std::string> uris;
  const PollLog log = make_poll_log(
      static_cast<std::size_t>(state.range(0)), uris);
  for (auto _ : state) {
    std::size_t total = 0;
    for (const std::string& uri : uris) {
      total += log.polls_performed(uri);
      total += successful_polls(log, uri).size();
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(uris.size()));
}
BENCHMARK(BM_PollLogIndexedQueries)->Arg(16)->Arg(256);

// The same extraction by scanning the whole record vector once per object
// (the pre-index behaviour) — goes quadratic as objects grow.
void BM_PollLogScanQueries(benchmark::State& state) {
  std::vector<std::string> uris;
  const PollLog log = make_poll_log(
      static_cast<std::size_t>(state.range(0)), uris);
  for (auto _ : state) {
    std::size_t total = 0;
    for (const std::string& uri : uris) {
      total += successful_polls(log.records(), uri).size();
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(uris.size()));
}
BENCHMARK(BM_PollLogScanQueries)->Arg(16)->Arg(256);

// ---- end-to-end engine sweeps ---------------------------------------------
//
// These drive the full poll pipeline (simulator -> engine -> origin ->
// policy -> poll log) exactly as the paper's evaluation sweeps do, so they
// measure what fleet-scale runs actually pay per poll.  The ratio of these
// benches against the committed bench/BENCH_baseline.json is the CI perf
// gate (tools/check_bench_regression.py).

constexpr Duration kSweepHorizon = 20000.0;

// Bench origins skip HTML body rendering: the consistency machinery reads
// only the typed metadata, and no bench consumer looks at payloads.
OriginServer::Config bench_origin_config() {
  OriginServer::Config config;
  config.render_bodies = false;
  return config;
}

// Irregular synthetic update streams: deterministic per object, mean
// inter-update gap swept across objects so LIMD TTRs spread out.
std::vector<UpdateTrace> make_sweep_traces(std::size_t objects) {
  std::vector<UpdateTrace> traces;
  traces.reserve(objects);
  for (std::size_t i = 0; i < objects; ++i) {
    Rng rng(1000 + i);
    std::vector<TimePoint> updates;
    TimePoint t = 0.0;
    for (;;) {
      t += rng.uniform(120.0, 600.0 + 10.0 * static_cast<double>(i % 128));
      if (t >= kSweepHorizon) break;
      updates.push_back(t);
    }
    traces.emplace_back("/object/" + std::to_string(i), std::move(updates),
                        kSweepHorizon);
  }
  return traces;
}

// One proxy, N temporal objects under LIMD, full horizon run.
void BM_EngineTemporalSweep(benchmark::State& state) {
  const std::size_t objects = static_cast<std::size_t>(state.range(0));
  const std::vector<UpdateTrace> traces = make_sweep_traces(objects);
  std::int64_t polls = 0;
  for (auto _ : state) {
    Simulator sim;
    OriginServer origin(sim, bench_origin_config());
    PollingEngine engine(sim, origin);
    for (const UpdateTrace& trace : traces) {
      origin.attach_update_trace(trace.name(), trace);
      engine.add_temporal_object(
          trace.name(),
          std::make_unique<LimdPolicy>(LimdPolicy::Config::paper_defaults(600.0)));
    }
    engine.start();
    sim.run_until(kSweepHorizon);
    polls += static_cast<std::int64_t>(engine.polls_performed());
    benchmark::DoNotOptimize(engine.poll_log().size());
  }
  state.SetItemsProcessed(polls);
}
BENCHMARK(BM_EngineTemporalSweep)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

// ---- coordinator dispatch --------------------------------------------------

// Update streams faster than TTR_min, so every scheduled poll observes a
// modification: the dispatch path runs its full depth (a coordinator
// bails immediately on unmodified polls in any dispatch mode), which is
// exactly the regime where the old fan-out hurt.
std::vector<UpdateTrace> make_fanout_traces(std::size_t objects) {
  std::vector<UpdateTrace> traces;
  traces.reserve(objects);
  for (std::size_t i = 0; i < objects; ++i) {
    Rng rng(7000 + i);
    std::vector<TimePoint> updates;
    TimePoint t = 0.0;
    for (;;) {
      t += rng.uniform(120.0, 360.0);
      if (t >= kSweepHorizon) break;
      updates.push_back(t);
    }
    traces.emplace_back("/object/" + std::to_string(i), std::move(updates),
                        kSweepHorizon);
  }
  return traces;
}

// Stage-6 dispatch cost as the number of attached δ-groups grows:
// eight-member groups over 128 LIMD objects with δ wider than any poll
// gap, so the window test always answers "recent enough" and no poll is
// ever actually triggered — the bench isolates dispatch (who is notified,
// and how the members are looked up) from trigger work.  Id-keyed
// subscription routing pays O(groups containing the polled object) — at
// most a handful here — per poll; the pre-interning fan-out paid a
// string-keyed virtual call into every attached group per poll, each
// walking its full member list with string compares and uri-hash δ-window
// probes (the committed BENCH_baseline.json entries were measured on that
// path — the pre-PR tree — so the trajectory records the routing win;
// EngineConfig::legacy_dispatch keeps the broadcast *shape* reproducible
// in-tree for the dispatch differential tests).
void BM_CoordinatorFanout(benchmark::State& state) {
  const std::size_t groups = static_cast<std::size_t>(state.range(0));
  const std::size_t objects = 128;
  const std::vector<UpdateTrace> traces = make_fanout_traces(objects);
  std::int64_t polls = 0;
  for (auto _ : state) {
    Simulator sim;
    OriginServer origin(sim, bench_origin_config());
    PollingEngine engine(sim, origin);
    for (const UpdateTrace& trace : traces) {
      origin.attach_update_trace(trace.name(), trace);
      engine.add_temporal_object(
          trace.name(),
          std::make_unique<LimdPolicy>(
              LimdPolicy::Config::paper_defaults(600.0)));
    }
    for (std::size_t g = 0; g < groups; ++g) {
      // Eight consecutive objects per group; past full coverage (128 / 8
      // = 16 groups) further groups wrap with a stagger, so high group
      // counts mean several groups per object, never duplicate groups.
      const std::size_t start = (g * 8 + (g / 16) * 3) % objects;
      std::vector<std::string> members;
      members.reserve(8);
      for (std::size_t j = 0; j < 8; ++j) {
        members.push_back(traces[(start + j) % objects].name());
      }
      engine.add_coordinator(std::make_unique<TriggeredPollCoordinator>(
          std::move(members), /*delta_mutual=*/kSweepHorizon));
    }
    engine.start();
    sim.run_until(kSweepHorizon);
    polls += static_cast<std::int64_t>(engine.polls_performed());
    benchmark::DoNotOptimize(engine.coordinator_notifies());
  }
  state.SetItemsProcessed(polls);
}
BENCHMARK(BM_CoordinatorFanout)
    ->Arg(1)
    ->Arg(8)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

// A full grouped engine sweep: 256 LIMD objects partitioned into 32
// eight-member δ-groups with a realistic δ, so triggered polls really
// fire and cascade — the end-to-end cost of running mutual consistency
// over a grouped working set.
void BM_GroupedTemporalSweep(benchmark::State& state) {
  constexpr std::size_t kObjects = 256;
  constexpr std::size_t kGroupSize = 8;
  const std::vector<UpdateTrace> traces = make_sweep_traces(kObjects);
  std::int64_t polls = 0;
  for (auto _ : state) {
    Simulator sim;
    OriginServer origin(sim, bench_origin_config());
    PollingEngine engine(sim, origin);
    for (const UpdateTrace& trace : traces) {
      origin.attach_update_trace(trace.name(), trace);
      engine.add_temporal_object(
          trace.name(),
          std::make_unique<LimdPolicy>(
              LimdPolicy::Config::paper_defaults(600.0)));
    }
    for (std::size_t g = 0; g < kObjects / kGroupSize; ++g) {
      std::vector<std::string> members;
      members.reserve(kGroupSize);
      for (std::size_t i = 0; i < kGroupSize; ++i) {
        members.push_back(traces[g * kGroupSize + i].name());
      }
      engine.add_coordinator(std::make_unique<TriggeredPollCoordinator>(
          std::move(members), /*delta_mutual=*/120.0));
    }
    engine.start();
    sim.run_until(kSweepHorizon);
    polls += static_cast<std::int64_t>(engine.polls_performed());
    benchmark::DoNotOptimize(engine.triggered_polls());
  }
  state.SetItemsProcessed(polls);
}
BENCHMARK(BM_GroupedTemporalSweep)->Unit(benchmark::kMillisecond);

// A fleet under cooperative push: every poll relays to every sibling
// tracking the uri, so the relay path dominates.
void BM_FleetRelayStorm(benchmark::State& state) {
  const std::size_t proxies = static_cast<std::size_t>(state.range(0));
  const std::size_t objects = 64;
  const std::vector<UpdateTrace> traces = make_sweep_traces(objects);
  std::int64_t refreshes = 0;
  for (auto _ : state) {
    Simulator sim;
    OriginServer origin(sim, bench_origin_config());
    FleetConfig config;
    config.proxies = proxies;
    config.cooperative_push = true;
    ProxyFleet fleet(sim, origin, config);
    for (const UpdateTrace& trace : traces) {
      origin.attach_update_trace(trace.name(), trace);
      fleet.add_temporal_object_everywhere(trace.name(), [] {
        return std::make_unique<LimdPolicy>(
            LimdPolicy::Config::paper_defaults(600.0));
      });
    }
    fleet.start();
    sim.run_until(kSweepHorizon);
    refreshes += static_cast<std::int64_t>(fleet.origin_polls() +
                                           fleet.relays_applied());
    benchmark::DoNotOptimize(fleet.origin_load().origin_messages);
  }
  state.SetItemsProcessed(refreshes);
}
BENCHMARK(BM_FleetRelayStorm)->Arg(4)->Unit(benchmark::kMillisecond);

// The relay-storm topology with the fault layer switched on: loss,
// jitter and capped-backoff retries on every relay, plus a staggered
// crash window per even-indexed proxy.  Every relay attempt now pays the
// counter-keyed hash draws and the per-attempt ledger, a steady fraction
// spawns retry chains, and deliveries probe the crash schedule — the
// delta against BM_FleetRelayStorm is the price of fault injection
// itself.  Items rate counts relay attempts (retries included), the
// quantity the fault path scales with.
void BM_FleetFaultSweep(benchmark::State& state) {
  const std::size_t proxies = static_cast<std::size_t>(state.range(0));
  const std::size_t objects = 64;
  const std::vector<UpdateTrace> traces = make_sweep_traces(objects);
  FaultSchedule faults;
  for (std::size_t p = 0; p < proxies; p += 2) {
    const double start = 4000.0 + 1500.0 * static_cast<double>(p);
    faults.crashes.push_back({p, {{start, start + 2500.0}}});
  }
  faults.relay_loss = 0.15;
  faults.relay_jitter_max = 0.4;
  faults.retry_backoff_base = 1.0;
  faults.retry_backoff_cap = 8.0;
  faults.relay_retry_limit = 4;
  std::int64_t attempts = 0;
  for (auto _ : state) {
    Simulator sim;
    OriginServer origin(sim, bench_origin_config());
    FleetConfig config;
    config.proxies = proxies;
    config.cooperative_push = true;
    config.relay_latency = 1.0;
    config.faults = faults;
    ProxyFleet fleet(sim, origin, config);
    for (const UpdateTrace& trace : traces) {
      origin.attach_update_trace(trace.name(), trace);
      fleet.add_temporal_object_everywhere(trace.name(), [] {
        return std::make_unique<LimdPolicy>(
            LimdPolicy::Config::paper_defaults(600.0));
      });
    }
    fleet.start();
    sim.run_until(kSweepHorizon);
    attempts += static_cast<std::int64_t>(fleet.relays_sent());
    benchmark::DoNotOptimize(fleet.relays_lost() +
                             fleet.relays_dropped_dark());
  }
  state.SetItemsProcessed(attempts);
}
BENCHMARK(BM_FleetFaultSweep)
    ->ArgName("proxies")
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// The sharded fleet at full width: 8 cooperative proxies × 1024 LIMD
// objects, every proxy tracking every object, relay latency as the
// conservative-lookahead window.  No δ-groups, so the fleet splits into
// 8 single-proxy shards and the thread count sweeps the worker pool —
// threads:1 runs the identical sharded machinery inline (mailboxes,
// windows, canonical merge), so the ratio to higher thread counts
// isolates parallel speedup from sharding overhead.  Real time is the
// measured quantity: with workers doing the simulating, the calling
// thread's CPU time measures only the barrier.
void BM_ShardedFleetSweep(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kProxies = 8;
  constexpr std::size_t kObjects = 1024;
  const auto traces = std::make_shared<const std::vector<UpdateTrace>>(
      make_sweep_traces(kObjects));
  std::int64_t refreshes = 0;
  for (auto _ : state) {
    ShardedFleetConfig config;
    config.fleet.proxies = kProxies;
    config.fleet.cooperative_push = true;
    config.fleet.relay_latency = 60.0;
    config.threads = threads;
    config.origin = bench_origin_config();
    config.origin_setup = [traces](OriginServer& origin) {
      for (const UpdateTrace& trace : *traces) {
        origin.attach_update_trace(trace.name(), trace);
      }
    };
    ShardedFleet fleet(config);
    for (const UpdateTrace& trace : *traces) {
      fleet.add_temporal_object_everywhere(trace.name(), [] {
        return std::make_unique<LimdPolicy>(
            LimdPolicy::Config::paper_defaults(600.0));
      });
    }
    fleet.start();
    fleet.run_until(kSweepHorizon);
    refreshes += static_cast<std::int64_t>(fleet.origin_polls() +
                                           fleet.relays_applied());
    benchmark::DoNotOptimize(fleet.origin_load().origin_messages);
  }
  state.SetItemsProcessed(refreshes);
}
BENCHMARK(BM_ShardedFleetSweep)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Zero-relay topology under cooperative push: the proxies' working sets
// are disjoint, so every relay fan-out is empty and a lookahead window
// carries nothing — what remains is the pure per-window cost (cost
// hints, batch dispatch, barrier, bound scan, mailbox exchange).  The
// fixed policy pays horizon / relay_latency of those rounds; the
// adaptive policy sees an infinite send bound and collapses the run to
// one window, so the adaptive:0 / adaptive:1 ratio brackets the
// windowing overhead the adaptive edge removes.
void BM_ShardedWindowOverhead(benchmark::State& state) {
  const bool adaptive = state.range(0) != 0;
  constexpr std::size_t kProxies = 4;
  constexpr std::size_t kObjectsPerProxy = 32;
  const auto traces = std::make_shared<const std::vector<UpdateTrace>>(
      make_sweep_traces(kProxies * kObjectsPerProxy));
  std::int64_t polls = 0;
  for (auto _ : state) {
    ShardedFleetConfig config;
    config.fleet.proxies = kProxies;
    config.fleet.cooperative_push = true;
    config.fleet.relay_latency = 5.0;  // 4000 fixed windows to the horizon
    config.threads = 2;
    config.window_policy =
        adaptive ? WindowPolicy::kAdaptive : WindowPolicy::kFixed;
    config.origin = bench_origin_config();
    config.origin_setup = [traces](OriginServer& origin) {
      for (const UpdateTrace& trace : *traces) {
        origin.attach_update_trace(trace.name(), trace);
      }
    };
    ShardedFleet fleet(config);
    for (std::size_t p = 0; p < kProxies; ++p) {
      for (std::size_t o = 0; o < kObjectsPerProxy; ++o) {
        fleet.add_temporal_object(
            p, (*traces)[p * kObjectsPerProxy + o].name(), [] {
              return std::make_unique<LimdPolicy>(
                  LimdPolicy::Config::paper_defaults(600.0));
            });
      }
    }
    fleet.start();
    fleet.run_until(kSweepHorizon);
    polls += static_cast<std::int64_t>(fleet.origin_polls());
    benchmark::DoNotOptimize(fleet.relays_sent());
  }
  state.SetItemsProcessed(polls);
}
BENCHMARK(BM_ShardedWindowOverhead)
    ->ArgName("adaptive")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Sparse-relay topology: each proxy polls its own private working set
// (the bulk of the events) plus a few slowly-updating objects shared
// fleet-wide — the only relay traffic.  The fixed policy still cuts the
// run into horizon / relay_latency windows; the adaptive policy jumps
// each edge to the next instant a shared pair can send, so the window
// count tracks the actual cross-shard traffic.  The adaptive:0 vs
// adaptive:1 pair at each thread count is the tentpole's headline
// speedup; object partitioning keeps the private pairs spread across
// more shards than proxies.
void BM_ShardedSparseRelaySweep(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const bool adaptive = state.range(1) != 0;
  constexpr std::size_t kProxies = 8;
  constexpr std::size_t kPrivatePerProxy = 48;
  constexpr std::size_t kShared = 4;
  auto build_traces = [] {
    std::vector<UpdateTrace> traces;
    for (std::size_t i = 0; i < kShared; ++i) {
      Rng rng(7000 + i);
      std::vector<TimePoint> updates;
      TimePoint t = 0.0;
      for (;;) {
        t += rng.uniform(2500.0, 6000.0);  // slow: LIMD TTRs stretch out
        if (t >= kSweepHorizon) break;
        updates.push_back(t);
      }
      traces.emplace_back("/shared/" + std::to_string(i),
                          std::move(updates), kSweepHorizon);
    }
    std::vector<UpdateTrace> privates =
        make_sweep_traces(kProxies * kPrivatePerProxy);
    for (UpdateTrace& trace : privates) traces.push_back(std::move(trace));
    return traces;
  };
  const auto traces =
      std::make_shared<const std::vector<UpdateTrace>>(build_traces());
  std::int64_t refreshes = 0;
  for (auto _ : state) {
    ShardedFleetConfig config;
    config.fleet.proxies = kProxies;
    config.fleet.cooperative_push = true;
    config.fleet.relay_latency = 5.0;
    config.threads = threads;
    config.shards = kProxies + 4;  // object-partitioned layout
    config.window_policy =
        adaptive ? WindowPolicy::kAdaptive : WindowPolicy::kFixed;
    config.origin = bench_origin_config();
    config.origin_setup = [traces](OriginServer& origin) {
      for (const UpdateTrace& trace : *traces) {
        origin.attach_update_trace(trace.name(), trace);
      }
    };
    ShardedFleet fleet(config);
    const auto policy = [] {
      return std::make_unique<LimdPolicy>(
          LimdPolicy::Config::paper_defaults(600.0));
    };
    for (std::size_t i = 0; i < kShared; ++i) {
      fleet.add_temporal_object_everywhere((*traces)[i].name(), policy);
    }
    for (std::size_t p = 0; p < kProxies; ++p) {
      for (std::size_t o = 0; o < kPrivatePerProxy; ++o) {
        fleet.add_temporal_object(
            p, (*traces)[kShared + p * kPrivatePerProxy + o].name(), policy);
      }
    }
    fleet.start();
    fleet.run_until(kSweepHorizon);
    refreshes += static_cast<std::int64_t>(fleet.origin_polls() +
                                           fleet.relays_applied());
    benchmark::DoNotOptimize(fleet.origin_load().origin_messages);
  }
  state.SetItemsProcessed(refreshes);
}
BENCHMARK(BM_ShardedSparseRelaySweep)
    ->ArgNames({"threads", "adaptive"})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The client-traffic layer over a cooperative fleet: aggregated Poisson
// streams (Zipf popularity, diurnal thinning) reading through every
// proxy's cache while the polling engines refresh underneath.  The items
// rate counts client requests, so this measures the per-request cost of
// thinning + popularity sampling + serve_client_read + classification.
void BM_ClientFleetSweep(benchmark::State& state) {
  const std::size_t proxies = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kObjects = 64;
  const std::vector<UpdateTrace> traces = make_sweep_traces(kObjects);
  std::int64_t requests = 0;
  for (auto _ : state) {
    Simulator sim;
    OriginServer origin(sim, bench_origin_config());
    FleetConfig config;
    config.proxies = proxies;
    config.cooperative_push = true;
    ClientTrafficConfig traffic;
    traffic.request_rate = 5.0;
    traffic.zipf_exponent = 0.9;
    traffic.profile = DiurnalProfile::newsroom();
    config.client_traffic = traffic;
    ProxyFleet fleet(sim, origin, config);
    for (const UpdateTrace& trace : traces) {
      origin.attach_update_trace(trace.name(), trace);
      fleet.add_temporal_object_everywhere(trace.name(), [] {
        return std::make_unique<LimdPolicy>(
            LimdPolicy::Config::paper_defaults(600.0));
      });
    }
    fleet.start();
    sim.run_until(kSweepHorizon);
    requests += static_cast<std::int64_t>(
        fleet.client_traffic().requests_issued());
    benchmark::DoNotOptimize(fleet.merged_client_metrics().hit_rate());
  }
  state.SetItemsProcessed(requests);
}
BENCHMARK(BM_ClientFleetSweep)
    ->ArgName("proxies")
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// The demand-fill miss path under loss: a lossy fleet with slow retries
// leaves long uncached windows, so a steady share of client reads takes
// the full kClientMiss pipeline (unconditional fetch, poll-log append,
// policy update, sibling relay) plus session-locality sampling.  Items
// rate counts client requests, like BM_ClientFleetSweep — the delta
// between the two benches is the price of the fill path itself.
void BM_ClientDemandFillSweep(benchmark::State& state) {
  const std::size_t proxies = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kObjects = 64;
  const std::vector<UpdateTrace> traces = make_sweep_traces(kObjects);
  std::int64_t requests = 0;
  for (auto _ : state) {
    Simulator sim;
    OriginServer origin(sim, bench_origin_config());
    FleetConfig config;
    config.proxies = proxies;
    config.cooperative_push = true;
    config.engine.demand_fill = true;
    config.engine.loss_probability = 0.25;
    config.engine.retry_delay = 600.0;
    ClientTrafficConfig traffic;
    traffic.request_rate = 5.0;
    traffic.zipf_exponent = 0.9;
    traffic.session_locality = 0.3;
    traffic.session_objects = 4;
    traffic.profile = DiurnalProfile::newsroom();
    config.client_traffic = traffic;
    ProxyFleet fleet(sim, origin, config);
    for (const UpdateTrace& trace : traces) {
      origin.attach_update_trace(trace.name(), trace);
      fleet.add_temporal_object_everywhere(trace.name(), [] {
        return std::make_unique<LimdPolicy>(
            LimdPolicy::Config::paper_defaults(600.0));
      });
    }
    fleet.start();
    sim.run_until(kSweepHorizon);
    requests += static_cast<std::int64_t>(
        fleet.client_traffic().requests_issued());
    benchmark::DoNotOptimize(fleet.origin_load().demand_fills);
  }
  state.SetItemsProcessed(requests);
}
BENCHMARK(BM_ClientDemandFillSweep)
    ->ArgName("proxies")
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_PaperWorkloadGeneration(benchmark::State& state) {
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_cnn_fn_trace(++seed));
  }
}
BENCHMARK(BM_PaperWorkloadGeneration);

}  // namespace

BENCHMARK_MAIN();

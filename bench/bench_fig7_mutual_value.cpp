// Fig. 7 reproduction: mutual value-domain consistency on the AT&T +
// Yahoo stock traces, f = difference, δ swept $0.25..$5.
//  (a) number of polls: adaptive (virtual object) vs partitioned
//  (b) fidelity of the Mv guarantees
#include <iostream>

#include "harness/experiments.h"
#include "harness/reporting.h"
#include "trace/paper_workloads.h"
#include "util/table.h"

int main() {
  using namespace broadway;
  const ValueTrace att = make_att_stock_trace();
  const ValueTrace yahoo = make_yahoo_stock_trace();

  print_banner(std::cout,
               "Figure 7: Mutual consistency in the value domain, AT&T + "
               "Yahoo, f = difference");

  TextTable table;
  table.set_header({"delta ($)", "polls adaptive", "polls partitioned",
                    "fidelity adaptive", "fidelity partitioned"});

  std::vector<std::pair<double, double>> adaptive_series,
      partitioned_series;
  for (double delta : {0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0}) {
    MutualValueRunConfig config;
    config.delta = delta;
    config.approach = MutualValueApproach::kAdaptive;
    const auto adaptive = run_mutual_value(att, yahoo, config);
    config.approach = MutualValueApproach::kPartitioned;
    const auto partitioned = run_mutual_value(att, yahoo, config);

    table.add_row({fmt(delta, 2), std::to_string(adaptive.polls),
                   std::to_string(partitioned.polls),
                   fmt(adaptive.mutual.fidelity_time(), 3),
                   fmt(partitioned.mutual.fidelity_time(), 3)});
    adaptive_series.emplace_back(delta,
                                 static_cast<double>(adaptive.polls));
    partitioned_series.emplace_back(
        delta, static_cast<double>(partitioned.polls));
  }
  table.print(std::cout);

  std::cout << "\nFig 7(a) shape — polls vs delta ('*' adaptive, 'o' "
               "partitioned):\n";
  AsciiChartOptions options;
  options.x_label = "delta ($)";
  options.y_label = "polls";
  std::cout << render_ascii_chart2(adaptive_series, partitioned_series,
                                   options);

  std::cout
      << "\nPaper's observations reproduced:\n"
         "  - both approaches poll less and reach higher fidelity as delta "
         "grows;\n"
         "  - by exploiting the difference structure of f, the partitioned "
         "approach offers\n    higher fidelity than the adaptive (virtual "
         "object) approach, paying for it with\n    a correspondingly "
         "larger number of polls (tight tolerance on the fast stock).\n";
  return 0;
}

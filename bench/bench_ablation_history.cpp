// Ablation A1: violation-detection strategies (paper §3.1 / §5.1).
//
// How much does the proposed X-Modification-History extension actually
// buy?  Three proxies run LIMD over the same traces:
//   exact-history       — the extension, exact Fig. 1(b) detection;
//   last-modified-only  — stock HTTP/1.1;
//   probabilistic       — stock HTTP plus learned update-rate inference.
#include <iostream>

#include "harness/experiments.h"
#include "harness/reporting.h"
#include "trace/paper_workloads.h"
#include "util/table.h"
#include "util/time.h"

int main() {
  using namespace broadway;
  print_banner(std::cout,
               "Ablation A1: violation detection vs the modification-"
               "history extension (LIMD, Delta = 5 min)");

  TextTable table;
  table.set_header({"trace", "detector", "polls", "fidelity(v)",
                    "fidelity(t)", "violations"});

  for (const UpdateTrace& trace : make_all_temporal_traces()) {
    for (auto detection : {ViolationDetection::kExactHistory,
                           ViolationDetection::kLastModifiedOnly,
                           ViolationDetection::kProbabilistic}) {
      TemporalRunConfig config;
      config.delta = minutes(5.0);
      config.ttr_max = minutes(60.0);
      config.detection = detection;
      // The extension header is only served when the ablation arm uses it.
      config.origin_history =
          detection == ViolationDetection::kExactHistory;
      const auto result = run_limd_individual(trace, config);
      table.add_row({trace.name(), to_string(detection),
                     std::to_string(result.polls),
                     fmt(result.fidelity.fidelity_violations(), 3),
                     fmt(result.fidelity.fidelity_time(), 3),
                     std::to_string(result.fidelity.violations)});
    }
  }
  table.print(std::cout);

  std::cout
      << "\nReading: exact history detects Fig. 1(b) multi-update "
         "violations that Last-Modified\nmisses, so LIMD backs off more "
         "(more polls) and sustains equal-or-better fidelity;\nthe "
         "probabilistic detector recovers part of that gap without any "
         "protocol change.\n";
  return 0;
}

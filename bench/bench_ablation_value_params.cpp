// Ablation A4: Eq. 10 parameter sensitivity (w and α) on low- vs
// high-locality data (paper §4.1: "data that exhibits less locality can be
// handled by biasing the algorithm towards more conservative TTR values
// (by picking a small value of α)").
#include <iostream>

#include "harness/experiments.h"
#include "harness/reporting.h"
#include "trace/paper_workloads.h"
#include "trace/stock.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

// Low-locality stress stock: calm drift punctuated by violent regime
// flips, so the recent past is a poor predictor.
broadway::ValueTrace make_low_locality_trace() {
  using namespace broadway;
  Rng rng(404);
  StockWalkConfig config;
  config.name = "LowLocality";
  config.duration = hours(3.0);
  config.updates = 1500;
  config.initial_value = 100.0;
  config.min_value = 80.0;
  config.max_value = 120.0;
  config.tick_size = 0.01;
  config.step_sigma = 0.9;    // violent moves...
  config.reversion = 0.001;   // ...with almost no mean reversion
  config.burstiness = 0.7;    // concentrated in flurries
  return generate_stock_walk(rng, config);
}

}  // namespace

int main() {
  using namespace broadway;
  print_banner(std::cout,
               "Ablation A4: Eq. 10 sensitivity — smoothing w and "
               "conservative-mix alpha (Delta_v = $0.5)");

  TextTable table;
  table.set_header({"trace", "w", "alpha", "polls", "fidelity(v)",
                    "fidelity(t)"});

  const ValueTrace yahoo = make_yahoo_stock_trace();
  const ValueTrace stress = make_low_locality_trace();
  for (const ValueTrace* trace : {&yahoo, &stress}) {
    for (double w : {0.3, 0.5, 0.9}) {
      for (double alpha : {0.3, 0.7, 1.0}) {
        ValueRunConfig config;
        config.delta = 0.5;
        config.smoothing_w = w;
        config.alpha = alpha;
        const auto result = run_value_individual(*trace, config);
        table.add_row({trace->name(), fmt(w, 1), fmt(alpha, 1),
                       std::to_string(result.polls),
                       fmt(result.fidelity.fidelity_violations(), 3),
                       fmt(result.fidelity.fidelity_time(), 3)});
      }
    }
  }
  table.print(std::cout);

  std::cout
      << "\nReading: on the high-locality Yahoo trace the parameters barely "
         "matter; on the\nlow-locality stress trace a small alpha (leaning "
         "on TTR_observed_min) spends polls\nto claw back fidelity — the "
         "paper's recommendation for data with poor locality.\n";
  return 0;
}

// Fig. 2 reproduction: estimating the rate of change of an object's value
// from the two most recent polls, and the TTR that follows (Eq. 9),
// demonstrated against a known linear ramp.
#include <iostream>

#include "consistency/value_ttr.h"
#include "harness/reporting.h"
#include "util/table.h"

int main() {
  using namespace broadway;
  print_banner(std::cout,
               "Figure 2: Estimating the rate of change of the object value "
               "(Eq. 9: TTR = Delta / r)");

  // Server value ramps at exactly 0.02 $/s; Δv = 1.0.  The estimator's
  // slope and the resulting TTR are checked against the closed form.
  AdaptiveValueTtrPolicy::Config config;
  config.delta = 1.0;
  config.bounds = {1.0, 3600.0};
  config.smoothing_w = 1.0;  // show the raw estimate
  config.alpha = 1.0;
  AdaptiveValueTtrPolicy policy(config);

  TextTable table;
  table.set_header({"poll t (s)", "value ($)", "estimated r ($/s)",
                    "true r ($/s)", "TTR = Delta/r (s)", "expected (s)"});

  const double slope = 0.02;
  double prev_value = 100.0;
  double prev_time = 0.0;
  for (int k = 1; k <= 6; ++k) {
    const double t = prev_time + policy.current_ttr();
    const double value = 100.0 + slope * t;
    ValuePollObservation obs;
    obs.previous_poll_time = prev_time;
    obs.poll_time = t;
    obs.previous_value = prev_value;
    obs.value = value;
    const double ttr = policy.next_ttr(obs);
    table.add_row({fmt(t, 1), fmt(value, 3), fmt(policy.last_rate(), 4),
                   fmt(slope, 4), fmt(ttr, 1), fmt(config.delta / slope, 1)});
    prev_time = t;
    prev_value = value;
  }
  table.print(std::cout);

  std::cout << "\nOn a linear ramp the two-poll slope estimate (Fig. 2's "
               "construction) recovers the exact\nrate, and the policy "
               "settles at TTR = Delta/r = 50 s: it polls precisely as "
               "often as the\nvalue drifts by Delta.\n";
  return 0;
}

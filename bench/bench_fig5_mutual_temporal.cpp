// Fig. 5 reproduction: performance of the three mutual-consistency
// approaches on the CNN/FN + NYTimes/AP pair, Δ = 10 min, δ swept
// 1..30 minutes.
//  (a) number of polls: baseline LIMD vs LIMD+triggered vs LIMD+heuristic
//  (b) fidelity of the mutual guarantees
#include <iostream>

#include "harness/experiments.h"
#include "harness/reporting.h"
#include "trace/paper_workloads.h"
#include "util/table.h"
#include "util/time.h"

int main() {
  using namespace broadway;
  const UpdateTrace a = make_cnn_fn_trace();
  const UpdateTrace b = make_nytimes_ap_trace();

  print_banner(std::cout,
               "Figure 5: Mutual consistency approaches, CNN/FN + "
               "NYTimes/AP, Delta = 10 min");

  TextTable table;
  table.set_header({"delta (min)", "polls base", "polls trig",
                    "polls heur", "extra trig", "extra heur",
                    "fidelity base", "fidelity trig", "fidelity heur"});

  std::vector<std::pair<double, double>> base_series, trig_series,
      heur_series;
  for (double delta_min : {1.0, 2.0, 5.0, 10.0, 15.0, 20.0, 30.0}) {
    MutualTemporalRunConfig config;
    config.base.delta = minutes(10.0);
    config.base.ttr_max = minutes(60.0);
    config.delta_mutual = minutes(delta_min);

    config.approach = MutualApproach::kBaseline;
    const auto baseline = run_mutual_temporal(a, b, config);
    config.approach = MutualApproach::kTriggered;
    const auto triggered = run_mutual_temporal(a, b, config);
    config.approach = MutualApproach::kHeuristic;
    const auto heuristic = run_mutual_temporal(a, b, config);

    table.add_row({fmt(delta_min, 0), std::to_string(baseline.polls),
                   std::to_string(triggered.polls),
                   std::to_string(heuristic.polls),
                   std::to_string(triggered.triggered),
                   std::to_string(heuristic.triggered),
                   fmt(baseline.mutual.fidelity_time(), 3),
                   fmt(triggered.mutual.fidelity_time(), 3),
                   fmt(heuristic.mutual.fidelity_time(), 3)});
    base_series.emplace_back(delta_min,
                             static_cast<double>(baseline.polls));
    trig_series.emplace_back(delta_min,
                             static_cast<double>(triggered.polls));
    heur_series.emplace_back(delta_min,
                             static_cast<double>(heuristic.polls));
  }
  table.print(std::cout);

  std::cout << "\nFig 5(a) shape — polls vs delta ('*' triggered, 'o' "
               "heuristic; baseline is flat):\n";
  AsciiChartOptions options;
  options.x_label = "delta (min)";
  options.y_label = "polls";
  std::cout << render_ascii_chart2(trig_series, heur_series, options);

  std::cout
      << "\nPaper's observations reproduced:\n"
         "  - both mutual approaches poll more than baseline LIMD; the "
         "heuristic is cheaper\n    than triggered polls (it skips "
         "slower-changing members);\n"
         "  - the heuristic stays within ~20% of the baseline poll count;\n"
         "  - fidelity: triggered ~1.0 >= heuristic (0.87-1.0) >= baseline; "
         "overhead shrinks\n    as delta grows.\n";
  return 0;
}

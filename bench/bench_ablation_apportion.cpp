// Ablation A3: δ-apportioning rules for the partitioned Mv approach.
//
// The paper apportions inversely to rates (fast mover gets the tight
// share).  This ablation compares that against an equal split and the
// inverted (proportional-to-rate) rule on the AT&T + Yahoo pair.
#include <iostream>
#include <memory>

#include "consistency/partitioned.h"
#include "harness/experiments.h"
#include "harness/reporting.h"
#include "metrics/value_fidelity.h"
#include "origin/origin_server.h"
#include "proxy/polling_engine.h"
#include "sim/simulator.h"
#include "trace/paper_workloads.h"
#include "util/table.h"

namespace {

using namespace broadway;

// Fixed-share partitioned run: each object keeps share_i of δ forever
// (bypasses the rate-based re-apportioning by pinning tolerances).
struct FixedSplitResult {
  std::size_t polls = 0;
  MutualValueReport mutual;
};

FixedSplitResult run_fixed_split(const ValueTrace& a, const ValueTrace& b,
                                 double delta, double share_a) {
  Simulator sim;
  OriginServer origin(sim);
  PollingEngine engine(sim, origin);
  origin.attach_value_trace(a.name(), a);
  origin.attach_value_trace(b.name(), b);

  AdaptiveValueTtrPolicy::Config pa;
  pa.delta = delta * share_a;
  pa.bounds = {1.0, 300.0};
  AdaptiveValueTtrPolicy::Config pb = pa;
  pb.delta = delta * (1.0 - share_a);
  engine.add_value_object(a.name(), pa);
  engine.add_value_object(b.name(), pb);

  const Duration horizon = std::min(a.duration(), b.duration());
  engine.start();
  sim.run_until(horizon);

  FixedSplitResult result;
  result.polls = engine.polls_performed();
  const auto polls_a = successful_polls(engine.poll_log(), a.name());
  const auto polls_b = successful_polls(engine.poll_log(), b.name());
  const DifferenceFunction difference;
  result.mutual = evaluate_mutual_value(a, polls_a, b, polls_b, difference,
                                        delta, horizon);
  return result;
}

}  // namespace

int main() {
  const ValueTrace att = make_att_stock_trace();
  const ValueTrace yahoo = make_yahoo_stock_trace();

  print_banner(std::cout,
               "Ablation A3: delta apportioning rules, AT&T + Yahoo, "
               "f = difference");

  TextTable table;
  table.set_header(
      {"delta ($)", "rule", "polls", "fidelity(t)", "violations"});
  for (double delta : {0.5, 1.0, 2.0}) {
    // Paper rule: inverse-rate (dynamic re-apportioning).
    MutualValueRunConfig config;
    config.delta = delta;
    config.approach = MutualValueApproach::kPartitioned;
    const auto paper_rule = run_mutual_value(att, yahoo, config);
    table.add_row({fmt(delta, 2), "inverse-rate (paper)",
                   std::to_string(paper_rule.polls),
                   fmt(paper_rule.mutual.fidelity_time(), 3),
                   std::to_string(paper_rule.mutual.violations)});

    // Equal split.
    const auto equal = run_fixed_split(att, yahoo, delta, 0.5);
    table.add_row({fmt(delta, 2), "equal split",
                   std::to_string(equal.polls),
                   fmt(equal.mutual.fidelity_time(), 3),
                   std::to_string(equal.mutual.violations)});

    // Inverted rule: the FAST object (Yahoo, index 1 here as object b)
    // gets the LOOSE share — AT&T gets the tight 10%.
    const auto inverted = run_fixed_split(att, yahoo, delta, 0.1);
    table.add_row({fmt(delta, 2), "proportional-to-rate (inverted)",
                   std::to_string(inverted.polls),
                   fmt(inverted.mutual.fidelity_time(), 3),
                   std::to_string(inverted.mutual.violations)});
  }
  table.print(std::cout);

  std::cout
      << "\nReading: giving the volatile stock the loose tolerance "
         "(inverted rule) lets f drift\nthrough the budget between its "
         "infrequent polls; the paper's inverse-rate rule pins\nthe fast "
         "mover tightly and spends the budget where drift is cheap.\n";
  return 0;
}

// Fig. 8 reproduction: variation of f = difference(AT&T, Yahoo) at the
// proxy vs the server over a window of the trace, δ = $0.6, for both Mv
// approaches.  The partitioned proxy-side series hugs the server-side
// series more tightly.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "harness/experiments.h"
#include "harness/reporting.h"
#include "trace/paper_workloads.h"
#include "util/table.h"

namespace {

using broadway::MutualValueRunResult;

// Mean/max absolute gap between the proxy- and server-side f over a
// window (the visual "tightness" of Fig. 8 made numeric).
struct Tracking {
  double mean_gap = 0.0;
  double max_gap = 0.0;
  std::size_t samples = 0;
};

Tracking tracking_stats(const MutualValueRunResult& result, double t0,
                        double t1) {
  Tracking out;
  double total = 0.0;
  for (const auto& sample : result.series) {
    if (sample.time < t0 || sample.time > t1) continue;
    const double gap = std::abs(sample.f_server - sample.f_proxy);
    total += gap;
    out.max_gap = std::max(out.max_gap, gap);
    ++out.samples;
  }
  if (out.samples > 0) out.mean_gap = total / out.samples;
  return out;
}

}  // namespace

int main() {
  using namespace broadway;
  const ValueTrace att = make_att_stock_trace();
  const ValueTrace yahoo = make_yahoo_stock_trace();

  print_banner(std::cout,
               "Figure 8: f at the proxy and the server, AT&T + Yahoo, "
               "delta = $0.6 (window 2500-5000 s)");

  auto run = [&](MutualValueApproach approach) {
    MutualValueRunConfig config;
    config.delta = 0.6;
    config.approach = approach;
    config.collect_series = true;
    return run_mutual_value(att, yahoo, config);
  };
  const auto adaptive = run(MutualValueApproach::kAdaptive);
  const auto partitioned = run(MutualValueApproach::kPartitioned);

  // Render the paper's 2500-5000 s window for each approach:
  // '*' = server-side f, 'o' = proxy-side f.
  const std::pair<const char*, const MutualValueRunResult*> panels[] = {
      {"(a) Adaptive TTR approach", &adaptive},
      {"(b) Partitioned approach", &partitioned}};
  for (const auto& labelled : panels) {
    std::cout << "\n" << labelled.first << ":\n";
    std::vector<std::pair<double, double>> server_series, proxy_series;
    for (const auto& sample : labelled.second->series) {
      if (sample.time < 2500.0 || sample.time > 5000.0) continue;
      // Plot the difference Yahoo - AT&T as positive dollars like the
      // paper's y-axis (our f is AT&T - Yahoo; negate for display).
      server_series.emplace_back(sample.time, -sample.f_server);
      proxy_series.emplace_back(sample.time, -sample.f_proxy);
    }
    AsciiChartOptions options;
    options.x_label = "time (s)";
    options.y_label = "difference in stock prices ($)";
    std::cout << render_ascii_chart2(server_series, proxy_series, options);
  }

  TextTable table;
  table.set_header({"approach", "mean |f_server - f_proxy| ($)",
                    "max |gap| ($)", "polls", "fidelity(t)"});
  const Tracking ta = tracking_stats(adaptive, 2500.0, 5000.0);
  const Tracking tp = tracking_stats(partitioned, 2500.0, 5000.0);
  table.add_row({"adaptive TTR", fmt(ta.mean_gap, 3), fmt(ta.max_gap, 3),
                 std::to_string(adaptive.polls),
                 fmt(adaptive.mutual.fidelity_time(), 3)});
  table.add_row({"partitioned", fmt(tp.mean_gap, 3), fmt(tp.max_gap, 3),
                 std::to_string(partitioned.polls),
                 fmt(partitioned.mutual.fidelity_time(), 3)});
  table.print(std::cout);

  std::cout << "\nPaper's observation reproduced: the partitioned approach "
               "tracks the server-side f\nmore tightly than the adaptive "
               "TTR approach, at the cost of more polls.\n";
  return 0;
}

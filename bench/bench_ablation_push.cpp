// Ablation A5: pull-based consistency vs the server-push alternative the
// paper scopes out (footnote 1).
//
// For each Table 2 trace at Δ = 5 min, compares:
//   baseline      — poll every Δ (perfect fidelity, many polls);
//   LIMD          — the paper's adaptive poller;
//   push          — origin pushes every update on occurrence;
//   push+coalesce — pushes coalesced for up to 0.9·Δ (bursts share one
//                   message; the Δ bound still holds).
// Cost metric: network messages (polls or pushes).
#include <iostream>

#include "harness/experiments.h"
#include "harness/reporting.h"
#include "metrics/fidelity.h"
#include "origin/push.h"
#include "sim/simulator.h"
#include "trace/paper_workloads.h"
#include "util/table.h"
#include "util/time.h"

namespace {

using namespace broadway;

struct PushRun {
  std::size_t messages = 0;
  std::size_t coalesced = 0;
  TemporalFidelityReport fidelity;
};

PushRun run_push(const UpdateTrace& trace, Duration delta,
                 Duration coalesce_window) {
  Simulator sim;
  OriginServer origin(sim);
  PushChannel channel(sim, origin, coalesce_window);

  std::vector<PollInstant> deliveries;
  deliveries.push_back(PollInstant{0.0, 0.0});  // initial fetch
  origin.add_object(trace.name());
  channel.subscribe(trace.name(),
                    [&deliveries, &sim](const std::string&, const Response&) {
                      deliveries.push_back(
                          PollInstant{sim.now(), sim.now()});
                    });
  channel.attach_pushed_trace(trace.name(), trace);
  // Object already created above; attach_pushed_trace would have created
  // it otherwise.
  sim.run_until(trace.duration());

  PushRun out;
  out.messages = channel.pushes_delivered();
  out.coalesced = channel.updates_coalesced();
  out.fidelity = evaluate_temporal_fidelity(trace, deliveries, delta,
                                            trace.duration());
  return out;
}

}  // namespace

int main() {
  const Duration delta = minutes(5.0);
  print_banner(std::cout,
               "Ablation A5: pull (baseline/LIMD) vs server push "
               "(Delta = 5 min; cost = messages)");

  TextTable table;
  table.set_header({"trace", "mechanism", "messages", "fidelity(t)",
                    "coalesced updates"});
  for (const UpdateTrace& trace : make_all_temporal_traces()) {
    const auto baseline = run_baseline_individual(trace, delta);
    TemporalRunConfig limd_config;
    limd_config.delta = delta;
    limd_config.ttr_max = minutes(60.0);
    const auto limd = run_limd_individual(trace, limd_config);
    const PushRun push = run_push(trace, delta, 0.0);
    const PushRun coalesced = run_push(trace, delta, 0.9 * delta);

    table.add_row({trace.name(), "baseline poll-every-Delta",
                   std::to_string(baseline.polls),
                   fmt(baseline.fidelity.fidelity_time(), 3), "-"});
    table.add_row({trace.name(), "LIMD", std::to_string(limd.polls),
                   fmt(limd.fidelity.fidelity_time(), 3), "-"});
    table.add_row({trace.name(), "push (immediate)",
                   std::to_string(push.messages),
                   fmt(push.fidelity.fidelity_time(), 3),
                   std::to_string(push.coalesced)});
    table.add_row({trace.name(), "push (coalesce 0.9*Delta)",
                   std::to_string(coalesced.messages),
                   fmt(coalesced.fidelity.fidelity_time(), 3),
                   std::to_string(coalesced.coalesced)});
  }
  table.print(std::cout);

  std::cout
      << "\nReading: push achieves perfect fidelity with exactly one "
         "message per update (the\npull lower bound the paper's optimal-"
         "poller argument describes), and coalescing\nrecovers burst "
         "savings.  The price is origin-side state per (object, proxy) "
         "pair —\nthe reason the paper (and HTTP/1.1) stays with proxy-"
         "driven polling.\n";
  return 0;
}

// Table 2 reproduction: characteristics of the temporal-domain trace
// workloads.  Paper values are printed alongside the synthetic traces'
// measured characteristics (the generators are calibrated to match; see
// trace/paper_workloads.h).
#include <iostream>

#include "harness/reporting.h"
#include "trace/paper_workloads.h"
#include "trace/trace_stats.h"
#include "util/table.h"
#include "util/time.h"

namespace {

struct PaperRow {
  const char* name;
  const char* period;
  std::size_t updates;
  double avg_minutes;
};

constexpr PaperRow kPaperRows[] = {
    {"CNN/FN", "Aug 7 13:04 - Aug 9 14:34", 113, 26.0},
    {"NYTimes/AP", "Aug 7 14:07 - Aug 9 11:25", 233, 11.6},
    {"NYTimes/Reuters", "Aug 7 14:12 - Aug 9 11:25", 133, 20.3},
    {"Guardian", "Aug 6 13:40 - Aug 9 15:32", 902, 4.9},
};

}  // namespace

int main() {
  using namespace broadway;
  print_banner(std::cout,
               "Table 2: Characteristics of Trace Workloads for Temporal "
               "Domain Consistency");

  TextTable table;
  table.set_header({"Trace", "Duration", "Updates (paper)",
                    "Updates (ours)", "Avg interval (paper)",
                    "Avg interval (ours)", "Gap CV"});
  const auto traces = make_all_temporal_traces();
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const UpdateTraceStats stats = compute_stats(traces[i]);
    table.add_row({kPaperRows[i].name, format_duration(stats.duration),
                   std::to_string(kPaperRows[i].updates),
                   std::to_string(stats.num_updates),
                   "every " + fmt(kPaperRows[i].avg_minutes, 1) + " min",
                   "every " + fmt(to_minutes(stats.mean_update_interval), 1) +
                       " min",
                   fmt(stats.gap_cv, 2)});
  }
  table.print(std::cout);

  std::cout << "\nCollection windows (paper): ";
  for (const auto& row : kPaperRows) {
    std::cout << row.name << " [" << row.period << "]  ";
  }
  std::cout << "\nSynthetic traces are seeded (seed " << kPaperSeed
            << ") and phase-aligned to the paper's wall-clock start hours;\n"
               "the diurnal newsroom profile reproduces the overnight lull "
               "of Fig. 4(a).\n";
  return 0;
}

// Multi-proxy fleet sweep: proxy count x object count, independent polling
// vs cooperative proxy-proxy push.
//
// The paper evaluates one proxy against one origin; this driver measures
// what changes when N proxies share the origin (src/fleet/).  For every
// configuration it runs both fleet modes over the same trace set and
// reports
//   * origin polls (and polls/sec) — the load the origin actually sees;
//   * relay messages delivered/applied on the proxy-proxy channel;
//   * mean/min Eq. 14 temporal fidelity over every (proxy, object) pair.
//
// Expected shape: independent polling multiplies origin load by N at
// unchanged fidelity; cooperative push keeps origin load near the
// single-proxy level (the first proxy to poll relays to the rest) at
// equal-or-better fidelity, paying in relay traffic instead.
//
// The object-count axis (hundreds to thousands of tracked objects per
// engine) exercises the indexed PollLog: per-object evaluation queries
// stay O(records-for-uri) regardless of fleet-wide log size.
//
// Flags: --smoke (small sweep for CI), --csv (machine-readable output).
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "fleet/faults.h"
#include "harness/experiments.h"
#include "harness/reporting.h"
#include "trace/generators.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/time.h"

namespace {

using namespace broadway;

// Heterogeneous working set: mean update interval log-uniform between 5
// minutes and 2 hours, Poisson updates.  A fixed seed per object makes the
// sweep reproducible and the two modes see identical traces.
std::vector<UpdateTrace> make_working_set(std::size_t objects,
                                          Duration horizon) {
  std::vector<UpdateTrace> traces;
  traces.reserve(objects);
  for (std::size_t i = 0; i < objects; ++i) {
    Rng rng(0x9e3779b9u + i);
    const double log_lo = std::log(minutes(5.0));
    const double log_hi = std::log(hours(2.0));
    const double mean_interval =
        std::exp(rng.uniform(log_lo, log_hi));
    auto updates = generate_poisson(rng, 1.0 / mean_interval, horizon);
    traces.emplace_back("/obj/" + std::to_string(i), std::move(updates),
                        horizon);
  }
  return traces;
}

FleetRunConfig make_config(std::size_t proxies, bool cooperative) {
  FleetRunConfig config;
  config.proxies = proxies;
  config.cooperative_push = cooperative;
  config.base.delta = minutes(10.0);
  config.base.ttr_max = hours(1.0);
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace broadway;
  bool smoke = false;
  bool csv = false;
  Flags flags;
  flags.add_bool("smoke", &smoke,
                 "small sweep (CI bit-rot check): {1,2} proxies x {64} "
                 "objects, 2h horizon");
  flags.add_bool("csv", &csv, "emit CSV instead of the text table");
  if (!flags.parse(argc, argv)) return 1;

  const Duration horizon = smoke ? hours(2.0) : hours(6.0);
  const std::vector<std::size_t> proxy_counts =
      smoke ? std::vector<std::size_t>{1, 2}
            : std::vector<std::size_t>{1, 2, 4, 8};
  const std::vector<std::size_t> object_counts =
      smoke ? std::vector<std::size_t>{64}
            : std::vector<std::size_t>{64, 256, 1024};

  if (!csv) {
    print_banner(std::cout,
                 "Proxy fleet sweep: independent polling vs cooperative "
                 "push (Delta = 10 min)");
  } else {
    std::cout << "proxies,objects,mode,origin_polls,origin_polls_per_sec,"
                 "relays_delivered,relays_applied,mean_fidelity,"
                 "min_fidelity\n";
  }

  TextTable table;
  table.set_header({"proxies", "objects", "mode", "origin polls", "polls/s",
                    "relays", "applied", "mean fid", "min fid"});

  bool cooperative_always_cheaper = true;
  bool cooperative_fidelity_holds = true;
  for (const std::size_t objects : object_counts) {
    const auto traces = make_working_set(objects, horizon);
    for (const std::size_t proxies : proxy_counts) {
      FleetRunResult independent, cooperative;
      for (const bool coop : {false, true}) {
        const auto result =
            run_fleet_temporal(traces, make_config(proxies, coop));
        (coop ? cooperative : independent) = result;
        const std::string mode = coop ? "cooperative" : "independent";
        if (csv) {
          std::cout << proxies << ',' << objects << ',' << mode << ','
                    << result.origin_polls << ','
                    << fmt(result.origin_polls_per_second, 4) << ','
                    << result.relays_delivered << ','
                    << result.relays_applied << ','
                    << fmt(result.mean_fidelity_time, 5) << ','
                    << fmt(result.min_fidelity_time, 5) << '\n';
        } else {
          table.add_row({std::to_string(proxies), std::to_string(objects),
                         mode, std::to_string(result.origin_polls),
                         fmt(result.origin_polls_per_second, 3),
                         std::to_string(result.relays_delivered),
                         std::to_string(result.relays_applied),
                         fmt(result.mean_fidelity_time, 4),
                         fmt(result.min_fidelity_time, 4)});
        }
      }
      if (proxies > 1) {
        if (cooperative.origin_polls >= independent.origin_polls) {
          cooperative_always_cheaper = false;
        }
        if (cooperative.mean_fidelity_time <
            independent.mean_fidelity_time - 1e-9) {
          cooperative_fidelity_holds = false;
        }
      }
    }
  }

  // Client-traffic leg: drive aggregated client streams at a cooperative
  // fleet and check the client-side headline properties.  Every proxy
  // polls at most ttr_max apart (rtt later the content lands), and relays
  // only tighten the serve series, so a transaction δ of
  // ttr_max + rtt + relay_latency bounds the cross-proxy snapshot spread:
  // with δ respected, violations must be exactly zero.
  ClientFleetRunConfig client_config;
  client_config.fleet = make_config(/*proxies=*/2, /*cooperative=*/true);
  client_config.client.request_rate = 2.0;
  client_config.transactions.rate = 0.05;
  client_config.transactions.objects = 3;
  client_config.transactions.delta = client_config.fleet.base.ttr_max +
                                     client_config.fleet.base.engine.rtt +
                                     client_config.fleet.relay_latency + 60.0;
  const auto client_result = run_fleet_client_temporal(
      make_working_set(object_counts.front(), horizon), client_config);
  const bool clients_hit = client_result.clients.hit_rate() > 0.0;
  const bool delta_respected =
      client_result.transactions.complete > 0 &&
      client_result.transactions.violations == 0;

  // Demand-fill leg: the same client fleet under heavy loss with slow
  // retries (long uncached windows), fills off vs on.  The request
  // streams are identical — the engine knob cannot influence the traffic
  // draws — so the comparison is exact: filling must strictly reduce
  // client misses, every fill must appear in both the client-side and
  // origin-side ledgers, and the origin-load invariant
  //   origin_polls == policy polls + demand fills
  // must hold against a recount of the full record streams.
  ClientFleetRunConfig lossy = client_config;
  lossy.transactions.rate = 0.0;
  lossy.fleet.base.engine.loss_probability = 0.3;
  lossy.fleet.base.engine.retry_delay = 600.0;
  const auto demand_traces = make_working_set(object_counts.front(), horizon);
  lossy.fleet.base.engine.demand_fill = false;
  const auto fills_off = run_fleet_client_temporal(demand_traces, lossy);
  lossy.fleet.base.engine.demand_fill = true;
  const auto fills_on = run_fleet_client_temporal(demand_traces, lossy);
  const bool fills_happen =
      fills_off.origin_load.demand_fills == 0 &&
      fills_on.origin_load.demand_fills > 0 &&
      fills_on.clients.demand_fills == fills_on.origin_load.demand_fills;
  const bool fill_invariant_holds =
      fills_on.origin_load.origin_polls ==
          fills_on.origin_load.policy_polls() +
              fills_on.origin_load.demand_fills &&
      fills_on.causes.client_miss == fills_on.origin_load.demand_fills &&
      fills_on.causes.total_refreshes() == fills_on.origin_load.origin_polls;
  const bool fills_reduce_misses =
      fills_on.clients.requests == fills_off.clients.requests &&
      fills_on.clients.misses < fills_off.clients.misses;

  // Fault-injection leg (fleet/faults.h), two runs:
  //
  // (a) Lossy relay channel, no crashes: with capped-backoff retries the
  //     losses must all be re-sent (delivery still happens, just late),
  //     the relay ledger must balance, and — because a retried relay
  //     arrives seconds late against TTRs of minutes — temporal fidelity
  //     must stay within a whisker of the lossless run over the same
  //     traces.  That is the graceful-degradation headline: loss costs
  //     relay traffic, not consistency.
  FleetRunConfig lossy_fleet = make_config(/*proxies=*/2, /*cooperative=*/true);
  lossy_fleet.relay_latency = 0.5;
  lossy_fleet.faults.relay_loss = 0.2;
  lossy_fleet.faults.relay_jitter_max = 0.25;
  lossy_fleet.faults.retry_backoff_base = 1.0;
  lossy_fleet.faults.retry_backoff_cap = 8.0;
  lossy_fleet.faults.relay_retry_limit = 6;
  const auto fault_traces = make_working_set(object_counts.front(), horizon);
  FleetRunConfig lossless_fleet = lossy_fleet;
  lossless_fleet.faults = FaultSchedule{};
  const auto lossless = run_fleet_temporal(fault_traces, lossless_fleet);
  const auto lossy_run = run_fleet_temporal(fault_traces, lossy_fleet);
  const bool relay_faults_fire = lossy_run.relays_lost > 0 &&
                                 lossy_run.relays_retried > 0 &&
                                 lossy_run.relays_delivered > 0;
  const bool relay_ledger_balances =
      lossy_run.relays_sent == lossy_run.relays_delivered +
                                   lossy_run.relays_in_flight +
                                   lossy_run.relays_lost;
  const bool lossy_fidelity_holds =
      lossy_run.mean_fidelity_time >= lossless.mean_fidelity_time - 0.02;

  // (b) A crash window layered on the lossy channel, with client traffic:
  //     the dark proxy's reads must be counted (and split into stale hits
  //     vs outage misses), and relays landing on it must show up as
  //     dropped-dark in the ledger.
  ClientFleetRunConfig outage = client_config;
  outage.transactions.rate = 0.0;
  outage.fleet = lossy_fleet;
  outage.fleet.faults.crashes.push_back({0, {{2700.0, 4500.0}}});
  const auto outage_result = run_fleet_client_temporal(
      make_working_set(object_counts.front(), horizon), outage);
  const bool outage_degrades =
      outage_result.fleet.dark_time > 0.0 &&
      outage_result.clients.dark_reads > 0 &&
      outage_result.clients.dark_stale + outage_result.clients.dark_misses <=
          outage_result.clients.dark_reads &&
      outage_result.fleet.relays_dropped_dark > 0;
  if (!csv) {
    table.print(std::cout);
    std::cout << "\nClient traffic (2 cooperative proxies, "
              << object_counts.front() << " objects):\n  requests "
              << client_result.clients.requests << ", hit rate "
              << fmt(client_result.clients.hit_rate(), 4) << ", mean age "
              << fmt(client_result.clients.age.mean(), 2)
              << " s, mean staleness "
              << fmt(client_result.clients.staleness.mean(), 2)
              << " s\n  transactions "
              << client_result.transactions.transactions << " (complete "
              << client_result.transactions.complete << "), spread mean "
              << fmt(client_result.transactions.spread.mean(), 2)
              << " s, violations "
              << client_result.transactions.violations << "\n";
    std::cout << "\nDemand fills (loss 0.3, retry 600 s):\n  fills off: "
              << fills_off.clients.misses << " misses / "
              << fills_off.clients.requests << " requests\n  fills on:  "
              << fills_on.clients.misses << " misses, "
              << fills_on.origin_load.demand_fills
              << " demand fills, mean fill latency "
              << fmt(fills_on.clients.fill_latency.mean(), 3) << " s\n";
    FaultSummary fault_summary;
    fault_summary.dark_time = outage_result.fleet.dark_time;
    fault_summary.dark_reads = outage_result.clients.dark_reads;
    fault_summary.dark_stale = outage_result.clients.dark_stale;
    fault_summary.dark_misses = outage_result.clients.dark_misses;
    fault_summary.relays_lost = outage_result.fleet.relays_lost;
    fault_summary.relays_retried = outage_result.fleet.relays_retried;
    fault_summary.relays_dropped_dark =
        outage_result.fleet.relays_dropped_dark;
    TextTable fault_table;
    fault_table.set_header(
        {"fault injection (crash 2700-4500 s, loss 0.2)", "value"});
    add_fault_rows(fault_table, fault_summary);
    std::cout << "\n";
    fault_table.print(std::cout);
    std::cout << "\nChecks:\n  - cooperative push cheaper at the origin "
                 "for every N > 1: "
              << (cooperative_always_cheaper ? "yes" : "NO")
              << "\n  - cooperative fidelity >= independent fidelity: "
              << (cooperative_fidelity_holds ? "yes" : "NO")
              << "\n  - client reads hit the prefetched cache: "
              << (clients_hit ? "yes" : "NO")
              << "\n  - zero violations at delta = ttr_max + rtt + relay: "
              << (delta_respected ? "yes" : "NO")
              << "\n  - demand fills fire and both ledgers agree: "
              << (fills_happen ? "yes" : "NO")
              << "\n  - origin polls == policy polls + demand fills: "
              << (fill_invariant_holds ? "yes" : "NO")
              << "\n  - fills strictly reduce client misses: "
              << (fills_reduce_misses ? "yes" : "NO")
              << "\n  - relay losses fire and every loss is retried: "
              << (relay_faults_fire ? "yes" : "NO")
              << "\n  - ledger: sent == delivered + in-flight + lost: "
              << (relay_ledger_balances ? "yes" : "NO")
              << "\n  - lossy fidelity within 0.02 of lossless: "
              << (lossy_fidelity_holds ? "yes" : "NO")
              << "\n  - crash window degrades gracefully (dark reads "
                 "classified, relays dropped dark): "
              << (outage_degrades ? "yes" : "NO") << "\n";
  }
  // Non-zero exit keeps the CI smoke run honest: the fleet path must keep
  // its headline properties, not merely run to completion.
  return cooperative_always_cheaper && cooperative_fidelity_holds &&
                 clients_hit && delta_respected && fills_happen &&
                 fill_invariant_holds && fills_reduce_misses &&
                 relay_faults_fire && relay_ledger_balances &&
                 lossy_fidelity_holds && outage_degrades
             ? 0
             : 1;
}

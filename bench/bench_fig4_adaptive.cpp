// Fig. 4 reproduction: adaptive behaviour of the LIMD approach on the
// CNN/FN trace with Δ = 10 min.
//  (a) updates per 2 hours over the trace (the diurnal pattern);
//  (b) the TTR time series: linear growth to TTR_max overnight,
//      multiplicative collapse to TTR_min every morning.
#include <iostream>

#include "harness/experiments.h"
#include "harness/reporting.h"
#include "trace/paper_workloads.h"
#include "util/table.h"
#include "util/time.h"

int main() {
  using namespace broadway;
  const UpdateTrace trace = make_cnn_fn_trace();

  print_banner(std::cout,
               "Figure 4(a): Update frequency, CNN/FN trace (updates per "
               "2 hours)");
  const auto buckets = trace.bucket_counts(hours(2.0));
  TextTable freq_table;
  freq_table.set_header({"window start", "wall clock", "updates"});
  std::vector<std::pair<double, double>> freq_series;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const TimePoint start = static_cast<double>(i) * hours(2.0);
    const TimePoint wall = start + hours(trace.start_hour());
    freq_table.add_row({format_duration(start), format_wallclock(wall),
                        std::to_string(buckets[i])});
    freq_series.emplace_back(to_hours(start),
                             static_cast<double>(buckets[i]));
  }
  freq_table.print(std::cout);
  AsciiChartOptions freq_options;
  freq_options.x_label = "hours into trace";
  freq_options.y_label = "updates / 2h";
  std::cout << render_ascii_chart(freq_series, freq_options);

  print_banner(std::cout,
               "Figure 4(b): Computed TTR values, CNN/FN trace, Delta = 10 "
               "min");
  TemporalRunConfig config;
  config.delta = minutes(10.0);
  config.ttr_max = minutes(60.0);
  const auto result = run_limd_individual(trace, config);

  std::vector<std::pair<double, double>> ttr_series;
  for (const auto& [time, ttr] : result.ttr_series) {
    ttr_series.emplace_back(to_hours(time), to_minutes(ttr));
  }
  AsciiChartOptions ttr_options;
  ttr_options.x_label = "hours into trace";
  ttr_options.y_label = "TTR (min)";
  std::cout << render_ascii_chart(ttr_series, ttr_options);

  // Summarise the day/night split of TTR values.
  double night_sum = 0.0, day_sum = 0.0;
  std::size_t night_n = 0, day_n = 0;
  for (const auto& [time, ttr] : result.ttr_series) {
    const double hour = hour_of_day(time + hours(trace.start_hour()));
    if (hour >= 1.0 && hour < 6.0) {
      night_sum += to_minutes(ttr);
      ++night_n;
    } else if (hour >= 10.0 && hour < 22.0) {
      day_sum += to_minutes(ttr);
      ++day_n;
    }
  }
  TextTable summary;
  summary.set_header({"period", "mean TTR (min)", "polls"});
  summary.add_row({"night (01:00-06:00)",
                   fmt(night_n ? night_sum / night_n : 0.0, 1),
                   std::to_string(night_n)});
  summary.add_row({"day (10:00-22:00)",
                   fmt(day_n ? day_sum / day_n : 0.0, 1),
                   std::to_string(day_n)});
  summary.print(std::cout);

  std::cout << "\nPaper's observation reproduced: the TTR grows linearly to "
               "TTR_max = 60 min every\nnight when updates stop, and "
               "collapses multiplicatively back to TTR_min = Delta = 10\n"
               "min every morning (total polls: "
            << result.polls << ", fidelity(v) "
            << fmt(result.fidelity.fidelity_violations(), 3) << ").\n";
  return 0;
}

// Table 3 reproduction: characteristics of the stock-price (value-domain)
// trace workloads.
#include <iostream>

#include "harness/reporting.h"
#include "trace/paper_workloads.h"
#include "trace/trace_stats.h"
#include "util/table.h"
#include "util/time.h"

namespace {

struct PaperRow {
  const char* name;
  const char* period;
  std::size_t updates;
  double min_value;
  double max_value;
};

constexpr PaperRow kPaperRows[] = {
    {"AT&T", "May 22 13:50-16:50", 653, 35.8, 36.5},
    {"Yahoo", "Mar 30 13:30-16:30", 2204, 160.2, 171.2},
};

}  // namespace

int main() {
  using namespace broadway;
  print_banner(std::cout,
               "Table 3: Characteristics of Trace Workloads for Value "
               "Domain Consistency");

  TextTable table;
  table.set_header({"Stock", "Duration", "Updates (paper)", "Updates (ours)",
                    "Range (paper)", "Range (ours)", "Mean |tick|",
                    "Max |tick|"});
  const ValueTrace traces[] = {make_att_stock_trace(),
                               make_yahoo_stock_trace()};
  for (std::size_t i = 0; i < 2; ++i) {
    const ValueTraceStats stats = compute_stats(traces[i]);
    table.add_row(
        {kPaperRows[i].name, format_duration(stats.duration),
         std::to_string(kPaperRows[i].updates),
         std::to_string(stats.num_updates),
         "$" + fmt(kPaperRows[i].min_value, 1) + " - $" +
             fmt(kPaperRows[i].max_value, 1),
         "$" + fmt(stats.min_value, 2) + " - $" + fmt(stats.max_value, 2),
         "$" + fmt(stats.mean_abs_change, 3),
         "$" + fmt(stats.max_abs_change, 3)});
  }
  table.print(std::cout);

  std::cout << "\nAT&T ticks on the post-decimalisation penny grid; Yahoo on "
               "the NASDAQ 1/16 grid\n(March 2001).  Yahoo is the "
               "frequent/volatile trace, AT&T the quiet one (paper §6.1.2).\n";
  return 0;
}

// Ablation A2: LIMD parameter sensitivity (paper §3.1's "optimistic vs
// conservative" discussion).  Sweeps the linear-increase factor l and the
// multiplicative-decrease factor m on the CNN/FN trace at Δ = 10 min.
#include <iostream>

#include "harness/experiments.h"
#include "harness/reporting.h"
#include "trace/paper_workloads.h"
#include "util/table.h"
#include "util/time.h"

int main() {
  using namespace broadway;
  const UpdateTrace trace = make_cnn_fn_trace();

  print_banner(std::cout,
               "Ablation A2a: linear increase factor l (CNN/FN, Delta = 10 "
               "min, fixed m = 0.5)");
  TextTable l_table;
  l_table.set_header({"l", "polls", "fidelity(v)", "fidelity(t)"});
  for (double l : {0.05, 0.1, 0.2, 0.4, 0.6, 0.9}) {
    TemporalRunConfig config;
    config.delta = minutes(10.0);
    config.ttr_max = minutes(60.0);
    config.linear_increase = l;
    config.adaptive_m = false;
    config.multiplicative_decrease = 0.5;
    const auto result = run_limd_individual(trace, config);
    l_table.add_row({fmt(l, 2), std::to_string(result.polls),
                     fmt(result.fidelity.fidelity_violations(), 3),
                     fmt(result.fidelity.fidelity_time(), 3)});
  }
  l_table.print(std::cout);

  print_banner(std::cout,
               "Ablation A2b: multiplicative decrease factor m (CNN/FN, "
               "Delta = 10 min, l = 0.2)");
  TextTable m_table;
  m_table.set_header({"m", "polls", "fidelity(v)", "fidelity(t)"});
  for (double m : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    TemporalRunConfig config;
    config.delta = minutes(10.0);
    config.ttr_max = minutes(60.0);
    config.adaptive_m = false;
    config.multiplicative_decrease = m;
    const auto result = run_limd_individual(trace, config);
    m_table.add_row({fmt(m, 1), std::to_string(result.polls),
                     fmt(result.fidelity.fidelity_violations(), 3),
                     fmt(result.fidelity.fidelity_time(), 3)});
  }
  m_table.print(std::cout);

  print_banner(std::cout,
               "Ablation A2c: paper's adaptive m = Delta/out-of-sync vs the "
               "best fixed m");
  TextTable a_table;
  a_table.set_header({"m policy", "polls", "fidelity(v)", "fidelity(t)"});
  {
    TemporalRunConfig config;
    config.delta = minutes(10.0);
    config.ttr_max = minutes(60.0);
    config.adaptive_m = true;
    const auto result = run_limd_individual(trace, config);
    a_table.add_row({"adaptive (paper)", std::to_string(result.polls),
                     fmt(result.fidelity.fidelity_violations(), 3),
                     fmt(result.fidelity.fidelity_time(), 3)});
    config.adaptive_m = false;
    config.multiplicative_decrease = 0.5;
    const auto fixed = run_limd_individual(trace, config);
    a_table.add_row({"fixed m = 0.5", std::to_string(fixed.polls),
                     fmt(fixed.fidelity.fidelity_violations(), 3),
                     fmt(fixed.fidelity.fidelity_time(), 3)});
  }
  a_table.print(std::cout);

  std::cout << "\nReading: large l (optimistic) saves polls but concedes "
               "fidelity; small m\n(conservative back-off) buys fidelity "
               "with polls — exactly the paper's tunability\nclaim.  The "
               "adaptive m scales the back-off to the violation depth.\n";
  return 0;
}

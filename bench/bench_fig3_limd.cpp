// Fig. 3 reproduction: efficacy of the LIMD algorithm on the CNN/FN trace.
//  (a) number of polls vs Δ            (LIMD vs baseline)
//  (b) fidelity (violation count, Eq. 13)
//  (c) fidelity (out-of-sync time, Eq. 14)
// Δ swept 1..60 minutes; baseline = poll every Δ (perfect fidelity).
#include <iostream>

#include "harness/experiments.h"
#include "harness/reporting.h"
#include "trace/paper_workloads.h"
#include "util/table.h"
#include "util/time.h"

int main() {
  using namespace broadway;
  const UpdateTrace trace = make_cnn_fn_trace();

  print_banner(std::cout,
               "Figure 3: Efficacy of the LIMD algorithm, CNN/FN trace "
               "(l=0.2, eps=0.02, adaptive m, TTR_max=60 min)");

  TextTable table;
  table.set_header({"Delta (min)", "polls LIMD", "polls baseline",
                    "fidelity(v) LIMD", "fidelity(v) base",
                    "fidelity(t) LIMD", "fidelity(t) base"});

  std::vector<std::pair<double, double>> limd_series;
  std::vector<std::pair<double, double>> base_series;
  for (double delta_min : {1.0, 2.0, 5.0, 10.0, 15.0, 20.0, 30.0, 45.0,
                           60.0}) {
    TemporalRunConfig config;
    config.delta = minutes(delta_min);
    config.ttr_max = minutes(60.0);
    const auto limd = run_limd_individual(trace, config);
    const auto baseline = run_baseline_individual(trace, minutes(delta_min));
    table.add_row({fmt(delta_min, 0), std::to_string(limd.polls),
                   std::to_string(baseline.polls),
                   fmt(limd.fidelity.fidelity_violations(), 3),
                   fmt(baseline.fidelity.fidelity_violations(), 3),
                   fmt(limd.fidelity.fidelity_time(), 3),
                   fmt(baseline.fidelity.fidelity_time(), 3)});
    limd_series.emplace_back(delta_min, static_cast<double>(limd.polls));
    base_series.emplace_back(delta_min,
                             static_cast<double>(baseline.polls));
  }
  table.print(std::cout);

  std::cout << "\nFig 3(a) shape — polls vs Delta ('*' LIMD, 'o' baseline):\n";
  AsciiChartOptions options;
  options.x_label = "Delta (min)";
  options.y_label = "polls";
  std::cout << render_ascii_chart2(limd_series, base_series, options);

  std::cout
      << "\nPaper's observations reproduced:\n"
         "  - at Delta = 1 min LIMD polls ~a factor of several fewer than "
         "the baseline at a\n    modest fidelity cost (paper: ~6x fewer, "
         "~20% fidelity loss);\n"
         "  - as Delta grows past the mean update interval (26 min) LIMD "
         "converges to the\n    baseline and fidelity approaches 1;\n"
         "  - the baseline has perfect fidelity by definition;\n"
         "  - both fidelity metrics behave similarly (Figs. 3(b) vs 3(c)).\n";
  return 0;
}

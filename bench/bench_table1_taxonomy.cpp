// Table 1 reproduction: the taxonomy of cache-consistency semantics, with
// each row demonstrated as an executable predicate against a constructed
// scenario (this table is definitional in the paper; here every semantic
// is exercised by the actual evaluator code).
#include <iostream>

#include "consistency/function.h"
#include "harness/reporting.h"
#include "metrics/fidelity.h"
#include "metrics/mutual_fidelity.h"
#include "metrics/value_fidelity.h"
#include "trace/update_trace.h"
#include "trace/value_trace.h"
#include "util/table.h"

int main() {
  using namespace broadway;
  print_banner(std::cout, "Table 1: Taxonomy of Cache Consistency Semantics");

  TextTable table;
  table.set_header(
      {"Semantics", "Domain", "Type", "Example (paper)", "Demonstrated"});

  // Δt: object within 5 time units of its server copy.
  {
    const UpdateTrace trace("a", {10.0}, 100.0);
    std::vector<PollInstant> polls = {{0.0, 0.0}, {12.0, 12.0}};
    const auto report = evaluate_temporal_fidelity(trace, polls, 5.0, 100.0);
    table.add_row({"delta-t", "temporal", "individual",
                   "object a within 5 time units of its server copy",
                   report.violations == 0 ? "holds (refresh within delta)"
                                          : "violated"});
  }
  // Mt: objects never out of sync by more than 5 time units.
  {
    const UpdateTrace a("a", {50.0}, 100.0);
    const UpdateTrace b("b", {52.0}, 100.0);
    std::vector<PollInstant> pa = {{0.0, 0.0}, {55.0, 55.0}};
    std::vector<PollInstant> pb = {{0.0, 0.0}, {56.0, 56.0}};
    const auto report =
        evaluate_mutual_temporal(a, pa, b, pb, 5.0, 100.0);
    table.add_row({"M-t", "temporal", "mutual",
                   "a and b never out-of-sync by more than 5 time units",
                   report.violations == 0 ? "holds (near-simultaneous polls)"
                                          : "violated"});
  }
  // Δv: value within 2.5 of the server copy.
  {
    const ValueTrace trace("a", 100.0, {{20.0, 101.5}}, 100.0);
    std::vector<PollInstant> polls = {{0.0, 0.0}};
    const auto report = evaluate_value_fidelity(trace, polls, 2.5, 100.0);
    table.add_row({"delta-v", "value", "individual",
                   "value of a within 2.5 of its server copy",
                   report.violations == 0 ? "holds (drift 1.5 < 2.5)"
                                          : "violated"});
  }
  // Mv: difference of values within 2.5 of the server-side difference.
  {
    const ValueTrace a("a", 100.0, {{20.0, 102.0}}, 100.0);
    const ValueTrace b("b", 50.0, {{20.0, 51.5}}, 100.0);
    std::vector<PollInstant> pa = {{0.0, 0.0}};
    std::vector<PollInstant> pb = {{0.0, 0.0}};
    DifferenceFunction f;
    const auto report =
        evaluate_mutual_value(a, pa, b, pb, f, 2.5, 100.0);
    table.add_row({"M-v", "value", "mutual",
                   "difference of a and b within 2.5 of the server's",
                   report.violations == 0
                       ? "holds (drifts partly cancel in f)"
                       : "violated"});
  }
  table.print(std::cout);

  std::cout << "\nEach row above ran the corresponding ground-truth "
               "evaluator from src/metrics\non a constructed scenario "
               "(Eqs. 2-5 of the paper).\n";
  return 0;
}

// Fig. 6 reproduction: adaptive behaviour of the rate heuristic on the
// NYTimes/AP + NYTimes/Reuters pair.
//  (a) the ratio of the two objects' update frequencies over time;
//  (b) the number of extra (triggered) polls per 2-hour window — triggers
//      flow from the slower object toward the faster one.
#include <algorithm>
#include <iostream>

#include "harness/experiments.h"
#include "harness/reporting.h"
#include "metrics/accounting.h"
#include "trace/paper_workloads.h"
#include "util/table.h"
#include "util/time.h"

int main() {
  using namespace broadway;
  const UpdateTrace ap = make_nytimes_ap_trace();
  const UpdateTrace reuters = make_nytimes_reuters_trace();
  const Duration horizon = std::min(ap.duration(), reuters.duration());
  const Duration bucket = hours(2.0);

  print_banner(std::cout,
               "Figure 6(a): Ratio of update frequencies, NYTimes/AP vs "
               "NYTimes/Reuters (per 2 h)");
  const auto ap_buckets = ap.bucket_counts(bucket);
  const auto reuters_buckets = reuters.bucket_counts(bucket);
  const std::size_t buckets =
      std::min(ap_buckets.size(), reuters_buckets.size());

  TextTable ratio_table;
  ratio_table.set_header(
      {"window", "AP updates", "Reuters updates", "ratio AP/Reuters"});
  std::vector<std::pair<double, double>> ratio_series;
  for (std::size_t i = 0; i < buckets; ++i) {
    const double ratio =
        reuters_buckets[i] == 0
            ? static_cast<double>(ap_buckets[i])
            : static_cast<double>(ap_buckets[i]) /
                  static_cast<double>(reuters_buckets[i]);
    ratio_table.add_row(
        {format_wallclock(static_cast<double>(i) * bucket +
                          hours(ap.start_hour())),
         std::to_string(ap_buckets[i]), std::to_string(reuters_buckets[i]),
         fmt(ratio, 2)});
    ratio_series.emplace_back(static_cast<double>(i) * 2.0, ratio);
  }
  ratio_table.print(std::cout);
  AsciiChartOptions ratio_options;
  ratio_options.x_label = "hours into trace";
  ratio_options.y_label = "update freq ratio";
  std::cout << render_ascii_chart(ratio_series, ratio_options);

  print_banner(std::cout,
               "Figure 6(b): Extra (triggered) polls per 2 h under the "
               "heuristic, Delta = 10 min, delta = 2 min");
  MutualTemporalRunConfig config;
  config.base.delta = minutes(10.0);
  config.base.ttr_max = minutes(60.0);
  // δ = 2 min: tight enough that the δ-window rule does not suppress all
  // triggers (at δ comparable to the poll period it would — correctly —
  // deem every member's own schedule sufficient).
  config.delta_mutual = minutes(2.0);
  config.approach = MutualApproach::kHeuristic;
  const auto result = run_mutual_temporal(ap, reuters, config);

  const auto extra_ap = polls_per_bucket(result.poll_log, bucket, horizon,
                                         PollCause::kTriggered, ap.name());
  const auto extra_reuters =
      polls_per_bucket(result.poll_log, bucket, horizon,
                       PollCause::kTriggered, reuters.name());
  TextTable extra_table;
  extra_table.set_header(
      {"window", "extra polls of AP (faster)", "extra polls of Reuters"});
  std::vector<std::pair<double, double>> extra_series;
  for (std::size_t i = 0; i < extra_ap.size(); ++i) {
    extra_table.add_row(
        {format_wallclock(static_cast<double>(i) * bucket +
                          hours(ap.start_hour())),
         std::to_string(extra_ap[i]),
         i < extra_reuters.size() ? std::to_string(extra_reuters[i]) : "0"});
    extra_series.emplace_back(
        static_cast<double>(i) * 2.0,
        static_cast<double>(extra_ap[i] +
                            (i < extra_reuters.size() ? extra_reuters[i]
                                                      : 0)));
  }
  extra_table.print(std::cout);
  AsciiChartOptions extra_options;
  extra_options.x_label = "hours into trace";
  extra_options.y_label = "extra polls / 2h";
  std::cout << render_ascii_chart(extra_series, extra_options);

  std::size_t total_ap = 0, total_reuters = 0;
  for (std::size_t v : extra_ap) total_ap += v;
  for (std::size_t v : extra_reuters) total_reuters += v;
  std::cout << "\nTriggered polls by target: AP (faster feed) "
            << total_ap << ", Reuters (slower feed) " << total_reuters
            << ".\nPaper's observation reproduced: updates to the slower "
               "object trigger polls of the\nfaster one, not vice versa, "
               "and extra polls concentrate where the rates diverge;\n"
               "overnight (no updates) no extra polls are issued.\n";
  return 0;
}
